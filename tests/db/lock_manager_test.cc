#include "unit/db/lock_manager.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace unitdb {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm(4);
  EXPECT_TRUE(lm.TryAcquireSharedAll(1, {0, 1}));
  EXPECT_TRUE(lm.TryAcquireSharedAll(2, {1, 2}));
  EXPECT_TRUE(lm.HoldsAny(1));
  EXPECT_TRUE(lm.HoldsAny(2));
  EXPECT_TRUE(lm.IsLocked(1));
}

TEST(LockManagerTest, ExclusiveBlocksShared) {
  LockManager lm(4);
  auto x = lm.TryAcquireExclusive(1, 2);
  ASSERT_TRUE(x.granted);
  EXPECT_FALSE(lm.TryAcquireSharedAll(2, {0, 2}));
  // All-or-nothing: the failed acquisition must hold nothing, including
  // the uncontended item 0.
  EXPECT_FALSE(lm.HoldsAny(2));
  EXPECT_FALSE(lm.IsLocked(0));
}

TEST(LockManagerTest, SharedBlocksExclusiveAndReportsHolders) {
  LockManager lm(4);
  ASSERT_TRUE(lm.TryAcquireSharedAll(7, {1}));
  ASSERT_TRUE(lm.TryAcquireSharedAll(3, {1}));
  auto x = lm.TryAcquireExclusive(9, 1);
  EXPECT_FALSE(x.granted);
  EXPECT_FALSE(x.blocked_by_exclusive);
  // Holders reported in deterministic (sorted) order.
  EXPECT_EQ(x.shared_holders, (std::vector<TxnId>{3, 7}));
}

TEST(LockManagerTest, ExclusiveBlocksExclusive) {
  LockManager lm(2);
  ASSERT_TRUE(lm.TryAcquireExclusive(1, 0).granted);
  auto x = lm.TryAcquireExclusive(2, 0);
  EXPECT_FALSE(x.granted);
  EXPECT_TRUE(x.blocked_by_exclusive);
  EXPECT_TRUE(x.shared_holders.empty());
}

TEST(LockManagerTest, ReleaseFreesItems) {
  LockManager lm(4);
  ASSERT_TRUE(lm.TryAcquireSharedAll(1, {0, 2}));
  auto freed = lm.ReleaseAll(1);
  std::sort(freed.begin(), freed.end());
  EXPECT_EQ(freed, (std::vector<ItemId>{0, 2}));
  EXPECT_FALSE(lm.HoldsAny(1));
  EXPECT_FALSE(lm.IsLocked(0));
  EXPECT_FALSE(lm.IsLocked(2));
  EXPECT_TRUE(lm.TryAcquireExclusive(2, 0).granted);
}

TEST(LockManagerTest, ReleaseWithoutLocksIsNoop) {
  LockManager lm(2);
  EXPECT_TRUE(lm.ReleaseAll(42).empty());
}

TEST(LockManagerTest, ExclusiveAfterSharedRelease) {
  LockManager lm(2);
  ASSERT_TRUE(lm.TryAcquireSharedAll(1, {0}));
  EXPECT_FALSE(lm.TryAcquireExclusive(2, 0).granted);
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.TryAcquireExclusive(2, 0).granted);
}

TEST(LockManagerTest, DuplicateItemsInReadSetCollapse) {
  LockManager lm(2);
  ASSERT_TRUE(lm.TryAcquireSharedAll(1, {1, 1, 1}));
  auto freed = lm.ReleaseAll(1);
  EXPECT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], 1);
}

TEST(LockManagerTest, HolderCount) {
  LockManager lm(4);
  EXPECT_EQ(lm.holder_count(), 0);
  lm.TryAcquireSharedAll(1, {0});
  lm.TryAcquireExclusive(2, 1);
  EXPECT_EQ(lm.holder_count(), 2);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.holder_count(), 1);
}

TEST(LockManagerTest, MixedConflictScenario) {
  // Models the 2PL-HP flow the engine drives: update displaces readers.
  LockManager lm(3);
  ASSERT_TRUE(lm.TryAcquireSharedAll(10, {0, 1}));
  ASSERT_TRUE(lm.TryAcquireSharedAll(11, {1, 2}));
  auto x = lm.TryAcquireExclusive(99, 1);
  ASSERT_FALSE(x.granted);
  for (TxnId victim : x.shared_holders) lm.ReleaseAll(victim);
  x = lm.TryAcquireExclusive(99, 1);
  EXPECT_TRUE(x.granted);
  // Victims hold nothing anymore, on any item.
  EXPECT_FALSE(lm.HoldsAny(10));
  EXPECT_FALSE(lm.HoldsAny(11));
  EXPECT_FALSE(lm.IsLocked(0));
  EXPECT_FALSE(lm.IsLocked(2));
}

}  // namespace
}  // namespace unitdb
