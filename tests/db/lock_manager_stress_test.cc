// Randomized stress test: the lock manager against a straightforward
// reference model, over thousands of random acquire/release operations.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "unit/common/rng.h"
#include "unit/db/lock_manager.h"

namespace unitdb {
namespace {

// Reference model: plain maps, no cleverness.
struct Model {
  std::map<ItemId, TxnId> exclusive;
  std::map<ItemId, std::set<TxnId>> shared;
  std::map<TxnId, std::set<ItemId>> held;

  bool CanShared(TxnId txn, const std::vector<ItemId>& items) const {
    for (ItemId i : items) {
      auto it = exclusive.find(i);
      if (it != exclusive.end() && it->second != txn) return false;
    }
    return true;
  }
  void AcquireShared(TxnId txn, const std::vector<ItemId>& items) {
    for (ItemId i : items) {
      shared[i].insert(txn);
      held[txn].insert(i);
    }
  }
  // Returns granted.
  bool TryExclusive(TxnId txn, ItemId item) {
    auto x = exclusive.find(item);
    if (x != exclusive.end() && x->second != txn) return false;
    auto s = shared.find(item);
    if (s != shared.end() && !s->second.empty()) return false;
    exclusive[item] = txn;
    held[txn].insert(item);
    return true;
  }
  void Release(TxnId txn) {
    auto it = held.find(txn);
    if (it == held.end()) return;
    for (ItemId i : it->second) {
      auto x = exclusive.find(i);
      if (x != exclusive.end() && x->second == txn) exclusive.erase(x);
      auto s = shared.find(i);
      if (s != shared.end()) s->second.erase(txn);
    }
    held.erase(it);
  }
  bool IsLocked(ItemId i) const {
    if (exclusive.count(i)) return true;
    auto s = shared.find(i);
    return s != shared.end() && !s->second.empty();
  }
};

class LockManagerStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LockManagerStressTest, MatchesReferenceModel) {
  const int kItems = 24;
  const int kTxns = 40;
  Rng rng(GetParam());
  LockManager lm(kItems);
  Model model;
  std::set<TxnId> live;  // txns currently holding (or having attempted)

  for (int step = 0; step < 5000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 2));
    const TxnId txn = rng.UniformInt(0, kTxns - 1);
    if (op == 0 && !model.held.count(txn)) {
      // Shared acquisition of 1-3 random items (all-or-nothing).
      std::vector<ItemId> items;
      const int n = static_cast<int>(rng.UniformInt(1, 3));
      for (int k = 0; k < n; ++k) {
        items.push_back(static_cast<ItemId>(rng.UniformInt(0, kItems - 1)));
      }
      const bool can = model.CanShared(txn, items);
      ASSERT_EQ(lm.TryAcquireSharedAll(txn, items), can) << "step " << step;
      if (can) {
        model.AcquireShared(txn, items);
        live.insert(txn);
      }
    } else if (op == 1 && !model.held.count(txn)) {
      const ItemId item = static_cast<ItemId>(rng.UniformInt(0, kItems - 1));
      const bool expect = [&] {
        Model copy = model;
        return copy.TryExclusive(txn, item);
      }();
      auto attempt = lm.TryAcquireExclusive(txn, item);
      ASSERT_EQ(attempt.granted, expect) << "step " << step;
      if (expect) {
        model.TryExclusive(txn, item);
        live.insert(txn);
      } else {
        // Conflict reporting must match the model's holders.
        if (!attempt.shared_holders.empty()) {
          for (TxnId h : attempt.shared_holders) {
            ASSERT_TRUE(model.shared[item].count(h));
          }
        } else {
          ASSERT_TRUE(attempt.blocked_by_exclusive);
          ASSERT_TRUE(model.exclusive.count(item));
        }
      }
    } else {
      lm.ReleaseAll(txn);
      model.Release(txn);
      live.erase(txn);
    }
    // Spot-check a random item's lock state.
    const ItemId probe = static_cast<ItemId>(rng.UniformInt(0, kItems - 1));
    ASSERT_EQ(lm.IsLocked(probe), model.IsLocked(probe)) << "step " << step;
  }
  // Drain and verify everything unlocks.
  for (TxnId txn : live) {
    lm.ReleaseAll(txn);
    model.Release(txn);
  }
  for (ItemId i = 0; i < kItems; ++i) {
    EXPECT_FALSE(lm.IsLocked(i)) << "item " << i;
    EXPECT_FALSE(model.IsLocked(i)) << "item " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockManagerStressTest,
                         ::testing::Values(1u, 2u, 3u, 99u));

}  // namespace
}  // namespace unitdb
