#include "unit/db/database.h"

#include <gtest/gtest.h>

#include "unit/common/types.h"

namespace unitdb {
namespace {

ItemUpdateSpec Spec(ItemId item, double period_s, double exec_ms,
                    double phase_s = 0.0) {
  ItemUpdateSpec s;
  s.item = item;
  s.ideal_period = SecondsToSim(period_s);
  s.update_exec = MillisToSim(exec_ms);
  s.phase = SecondsToSim(phase_s);
  return s;
}

TEST(DatabaseTest, ItemsStartFreshWithoutSources) {
  Database db(4);
  EXPECT_EQ(db.num_items(), 4);
  for (ItemId i = 0; i < 4; ++i) {
    EXPECT_EQ(db.Udrop(i, SecondsToSim(1000)), 0);
    EXPECT_DOUBLE_EQ(db.Freshness(i, SecondsToSim(1000)), 1.0);
  }
}

TEST(DatabaseTest, SetSourceValidation) {
  Database db(2);
  EXPECT_FALSE(db.SetSource(Spec(-1, 10, 5)).ok());
  EXPECT_FALSE(db.SetSource(Spec(2, 10, 5)).ok());
  ItemUpdateSpec bad_period = Spec(0, 10, 5);
  bad_period.ideal_period = 0;
  EXPECT_FALSE(db.SetSource(bad_period).ok());
  ItemUpdateSpec bad_exec = Spec(0, 10, 5);
  bad_exec.update_exec = 0;
  EXPECT_FALSE(db.SetSource(bad_exec).ok());
  ItemUpdateSpec bad_phase = Spec(0, 10, 5);
  bad_phase.phase = SecondsToSim(10);  // phase must be < period
  EXPECT_FALSE(db.SetSource(bad_phase).ok());
  EXPECT_TRUE(db.SetSource(Spec(0, 10, 5, 3)).ok());
}

TEST(DatabaseTest, ApplySpecsRejectsDuplicates) {
  Database db(3);
  EXPECT_FALSE(db.ApplySpecs({Spec(1, 10, 5), Spec(1, 20, 5)}).ok());
  EXPECT_TRUE(db.ApplySpecs({Spec(0, 10, 5), Spec(1, 20, 5)}).ok());
}

TEST(DatabaseTest, GenerationArithmetic) {
  Database db(1);
  ASSERT_TRUE(db.SetSource(Spec(0, 10, 5, 2)).ok());
  // Generations at t = 2, 12, 22, ... seconds.
  EXPECT_EQ(db.GenerationAt(0, SecondsToSim(0)), -1);
  EXPECT_EQ(db.GenerationAt(0, SecondsToSim(1.999)), -1);
  EXPECT_EQ(db.GenerationAt(0, SecondsToSim(2)), 0);
  EXPECT_EQ(db.GenerationAt(0, SecondsToSim(11.999)), 0);
  EXPECT_EQ(db.GenerationAt(0, SecondsToSim(12)), 1);
  EXPECT_EQ(db.GenerationAt(0, SecondsToSim(32)), 3);
}

TEST(DatabaseTest, UdropAndFreshnessEvolve) {
  Database db(1);
  ASSERT_TRUE(db.SetSource(Spec(0, 10, 5)).ok());
  // Fresh until the first generation at t=0... (phase 0: gen 0 at t=0).
  EXPECT_EQ(db.Udrop(0, SecondsToSim(0)), 1);  // gen 0 exists, none applied
  db.ApplyUpdate(0, SecondsToSim(0.5));        // installs generation 0
  EXPECT_EQ(db.Udrop(0, SecondsToSim(5)), 0);
  EXPECT_DOUBLE_EQ(db.Freshness(0, SecondsToSim(5)), 1.0);
  // Two more generations pass unapplied.
  EXPECT_EQ(db.Udrop(0, SecondsToSim(25)), 2);
  EXPECT_DOUBLE_EQ(db.Freshness(0, SecondsToSim(25)), 1.0 / 3.0);
}

TEST(DatabaseTest, ApplyUpdateInstallsNewestGeneration) {
  Database db(1);
  ASSERT_TRUE(db.SetSource(Spec(0, 10, 5)).ok());
  db.ApplyUpdate(0, SecondsToSim(35));  // newest generation then: 3
  EXPECT_EQ(db.item(0).installed_generation, 3);
  EXPECT_EQ(db.Udrop(0, SecondsToSim(39)), 0);
  EXPECT_EQ(db.Udrop(0, SecondsToSim(41)), 1);
  EXPECT_EQ(db.item(0).applied_updates, 1);
}

TEST(DatabaseTest, ApplyUpdateNeverRegresses) {
  Database db(1);
  ASSERT_TRUE(db.SetSource(Spec(0, 10, 5)).ok());
  db.ApplyUpdate(0, SecondsToSim(35));
  db.ApplyUpdate(0, SecondsToSim(5));  // older value must not downgrade
  EXPECT_EQ(db.item(0).installed_generation, 3);
}

TEST(DatabaseTest, QueryFreshnessIsMinimumOverReadSet) {
  Database db(3);
  ASSERT_TRUE(db.ApplySpecs({Spec(0, 10, 5), Spec(1, 10, 5)}).ok());
  db.ApplyUpdate(0, SecondsToSim(20.5));  // item 0 fresh at t=25
  // Item 1 has 3 unapplied generations at t=25 (gens at 0,10,20).
  // Item 2 has no source: always fresh.
  const SimTime t = SecondsToSim(25);
  EXPECT_DOUBLE_EQ(db.QueryFreshness({0}, t), 1.0);
  EXPECT_DOUBLE_EQ(db.QueryFreshness({1}, t), 0.25);
  EXPECT_DOUBLE_EQ(db.QueryFreshness({2}, t), 1.0);
  EXPECT_DOUBLE_EQ(db.QueryFreshness({0, 1, 2}, t), 0.25);
}

TEST(DatabaseTest, SetCurrentPeriodClampsAtIdeal) {
  Database db(1);
  ASSERT_TRUE(db.SetSource(Spec(0, 10, 5)).ok());
  db.SetCurrentPeriod(0, SecondsToSim(5));  // below ideal: clamped up
  EXPECT_EQ(db.item(0).current_period, SecondsToSim(10));
  db.SetCurrentPeriod(0, SecondsToSim(40));
  EXPECT_EQ(db.item(0).current_period, SecondsToSim(40));
}

TEST(DatabaseTest, DegradedCountTracksStretchedItems) {
  Database db(3);
  ASSERT_TRUE(db.ApplySpecs({Spec(0, 10, 5), Spec(1, 10, 5)}).ok());
  EXPECT_EQ(db.DegradedCount(), 0);
  db.SetCurrentPeriod(0, SecondsToSim(20));
  EXPECT_EQ(db.DegradedCount(), 1);
  db.SetCurrentPeriod(1, SecondsToSim(30));
  EXPECT_EQ(db.DegradedCount(), 2);
  db.SetCurrentPeriod(0, SecondsToSim(10));
  EXPECT_EQ(db.DegradedCount(), 1);
}

TEST(DatabaseTest, RecordAccessCounts) {
  Database db(2);
  db.RecordAccess(1);
  db.RecordAccess(1);
  EXPECT_EQ(db.item(1).query_accesses, 2);
  EXPECT_EQ(db.item(0).query_accesses, 0);
}

}  // namespace
}  // namespace unitdb
