// Micro-benchmarks (google-benchmark) of the building blocks: the lottery
// sampler, admission control's O(N_rq) scan, ready-queue and lock-manager
// operations, freshness probes, and whole-engine event throughput.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <vector>

#include "unit/common/fenwick.h"
#include "unit/common/rng.h"
#include "unit/core/admission.h"
#include "unit/core/lottery.h"
#include "unit/core/policies/unit_policy.h"
#include "unit/db/database.h"
#include "unit/db/lock_manager.h"
#include "unit/sched/engine.h"
#include "unit/sched/ready_queue.h"
#include "unit/sim/experiment.h"
#include "unit/workload/query_trace.h"
#include "unit/workload/update_trace.h"

namespace unitdb {
namespace {

void BM_FenwickSet(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  FenwickTree tree(n);
  Rng rng(1);
  size_t i = 0;
  for (auto _ : state) {
    tree.Set(i++ % n, rng.NextDouble());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FenwickSet)->Arg(1024)->Arg(65536);

void BM_FenwickFindPrefix(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  FenwickTree tree(n);
  Rng rng(2);
  for (size_t i = 0; i < n; ++i) tree.Set(i, rng.NextDouble());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.FindPrefix(rng.NextDouble() * tree.total()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FenwickFindPrefix)->Arg(1024)->Arg(65536);

void BM_LotterySample(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LotterySampler sampler(n);
  Rng rng(3);
  for (int i = 0; i < n; ++i) sampler.SetTicket(i, rng.Uniform(0.0, 5.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LotterySample)->Arg(1024)->Arg(16384);

void BM_LotteryTicketUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LotterySampler sampler(n);
  Rng rng(4);
  for (int i = 0; i < n; ++i) sampler.SetTicket(i, rng.Uniform(0.0, 5.0));
  int i = 0;
  for (auto _ : state) {
    // Mixed raises/lowers like the modulator's ticket churn.
    sampler.SetTicket(i % n, rng.Uniform(0.0, 5.0));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LotteryTicketUpdate)->Arg(1024)->Arg(16384);

void BM_ReadyQueueInsertPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Transaction> txns;
  txns.reserve(n);
  Rng rng(5);
  for (int i = 0; i < n; ++i) {
    txns.push_back(Transaction::MakeQuery(
        i, 0, MillisToSim(10), SecondsToSim(rng.Uniform(1.0, 100.0)), 0.9,
        {0}));
  }
  for (auto _ : state) {
    ReadyQueue q;
    for (auto& t : txns) q.Insert(&t);
    while (q.PopTop() != nullptr) {
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReadyQueueInsertPop)->Arg(256)->Arg(4096);

void BM_LockManagerSharedCycle(benchmark::State& state) {
  LockManager lm(1024);
  Rng rng(6);
  TxnId id = 0;
  for (auto _ : state) {
    std::vector<ItemId> items = {
        static_cast<ItemId>(rng.UniformInt(0, 1023)),
        static_cast<ItemId>(rng.UniformInt(0, 1023))};
    lm.TryAcquireSharedAll(id, items);
    lm.ReleaseAll(id);
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockManagerSharedCycle);

void BM_FreshnessProbe(benchmark::State& state) {
  Database db(1024);
  Rng rng(7);
  std::vector<ItemUpdateSpec> specs;
  for (int i = 0; i < 1024; ++i) {
    ItemUpdateSpec s;
    s.item = i;
    s.ideal_period = SecondsToSim(rng.Uniform(1.0, 100.0));
    s.update_exec = MillisToSim(10);
    s.phase = 0;
    specs.push_back(s);
  }
  (void)db.ApplySpecs(specs);
  SimTime t = 0;
  for (auto _ : state) {
    t += 1000;
    benchmark::DoNotOptimize(
        db.Freshness(static_cast<ItemId>(rng.UniformInt(0, 1023)), t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreshnessProbe);

// Admission control: cost of one Admit() decision as the ready queue grows.
// arg0 = queue length, arg1 = 0 for the seed's naive O(N_rq) scan, 1 for the
// incremental Fenwick/segment-tree index (O(log N_rq)). Built by flooding an
// engine with long-deadline queries behind a long-running head query, then
// timing decisions via the policy hook on repeated replays.
void BM_AdmissionScan(benchmark::State& state) {
  const int queue_len = static_cast<int>(state.range(0));
  const bool indexed = state.range(1) != 0;
  Workload w;
  w.num_items = 16;
  w.duration = SecondsToSim(1000.0);
  // Head query pins the CPU; `queue_len` queries pile up behind it; the
  // last arrival is the measured candidate (via AdmissionController).
  QueryRequest head;
  head.id = 0;
  head.arrival = 0;
  head.exec = SecondsToSim(900.0);
  head.relative_deadline = SecondsToSim(950.0);
  head.items = {0};
  w.queries.push_back(head);
  for (int i = 0; i < queue_len; ++i) {
    QueryRequest q;
    q.id = i + 1;
    q.arrival = SecondsToSim(0.001 * (i + 1));
    q.exec = MillisToSim(10.0);
    q.relative_deadline = SecondsToSim(990.0);
    q.items = {static_cast<ItemId>(i % 16)};
    w.queries.push_back(q);
  }
  // The candidate arrives last.
  QueryRequest cand = w.queries.back();
  cand.id = queue_len + 1;
  cand.arrival = SecondsToSim(1.0);
  w.queries.push_back(cand);

  struct Probe : Policy {
    AdmissionController* ac = nullptr;
    benchmark::State* state = nullptr;
    TxnId candidate_id = 0;
    std::string name() const override { return "probe"; }
    bool AdmitQuery(EngineContext& e, const Transaction& q) override {
      if (q.id() == candidate_id) {
        const auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(ac->Admit(e, q));
        const auto t1 = std::chrono::steady_clock::now();
        state->SetIterationTime(
            std::chrono::duration<double>(t1 - t0).count());
      }
      return true;
    }
  };
  AdmissionParams params;
  params.use_index = indexed;
  AdmissionController ac(params, UsmWeights{1.0, 0.5, 1.0, 0.5});
  EngineParams engine_params;
  engine_params.use_admission_index = indexed;
  for (auto _ : state) {
    Probe probe;
    probe.ac = &ac;
    probe.state = &state;
    probe.candidate_id = queue_len + 1;
    Engine engine(w, &probe, engine_params);
    engine.Run();
  }
  state.SetItemsProcessed(state.iterations() * queue_len);
  state.SetLabel(indexed ? "indexed" : "naive");
}
BENCHMARK(BM_AdmissionScan)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->UseManualTime()
    ->Iterations(30)  // each iteration replays a whole engine run
    ->Unit(benchmark::kMicrosecond);

// Whole-engine throughput: events per second of simulated serving, for each
// policy on a scaled-down standard workload.
void BM_EngineRun(benchmark::State& state) {
  const char* kPolicies[] = {"unit", "imu", "odu", "qmf"};
  const char* policy = kPolicies[state.range(0)];
  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, 0.1, 42);
  if (!w.ok()) {
    state.SkipWithError("workload generation failed");
    return;
  }
  int64_t txns = 0;
  for (auto _ : state) {
    auto r = RunExperiment(*w, policy, UsmWeights{});
    if (!r.ok()) {
      state.SkipWithError("run failed");
      return;
    }
    txns += r->metrics.counts.submitted + r->metrics.updates_generated;
  }
  state.SetItemsProcessed(txns);
  state.SetLabel(policy);
}
BENCHMARK(BM_EngineRun)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

// A/B of this PR's engine hot-path work on the med-unif cell. arg0 is the
// query arrival rate in Hz: 5 is the paper's base rate; 50 is the
// heavy-traffic regime the ROADMAP targets, where hundreds of queries queue
// up and the admission scan dominates the seed's per-arrival cost. arg1 = 0
// runs the seed-equivalent configuration (naive O(N_rq) admission scan, no
// event compaction), 1 the optimized engine (indexed admission + lazy event
// cancellation). Same simulation either way — outputs are bit-identical —
// so time is the only difference.
void BM_EngineThroughput(benchmark::State& state) {
  const double rate_hz = static_cast<double>(state.range(0));
  const bool optimized = state.range(1) != 0;
  QueryTraceParams qp;
  qp.seed = 42;
  qp.duration =
      static_cast<SimDuration>(static_cast<double>(qp.duration) * 0.1);
  qp.base_rate_hz = rate_hz;
  auto w = GenerateQueryTrace(qp);
  if (w.ok()) {
    UpdateTraceParams up;
    up.volume = UpdateVolume::kMedium;
    up.distribution = UpdateDistribution::kUniform;
    up.seed = 43;
    const Status s = GenerateUpdateTrace(up, *w);
    if (!s.ok()) w = s;
  }
  if (!w.ok()) {
    state.SkipWithError("workload generation failed");
    return;
  }
  EngineParams engine;
  engine.use_admission_index = optimized;
  engine.compact_events = optimized;
  PolicyOptions options;
  options.unit.admission.use_index = optimized;
  int64_t events = 0;
  for (auto _ : state) {
    auto r = RunExperiment(*w, "unit", UsmWeights{1.0, 0.5, 1.0, 0.5},
                           engine, options);
    if (!r.ok()) {
      state.SkipWithError("run failed");
      return;
    }
    events += r->metrics.events_processed + r->metrics.events_compacted;
  }
  state.SetItemsProcessed(events);  // scheduled events retired per second
  state.SetLabel(optimized ? "optimized" : "seed-equivalent");
}
BENCHMARK(BM_EngineThroughput)
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({50, 0})
    ->Args({50, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace unitdb

BENCHMARK_MAIN();
