// Reproduces Figure 5 (and prints Table 2) of the paper: USM of the four
// algorithms on the med-unif trace under non-zero penalty weights —
// (a) penalties < 1 and (b) penalties > 1, with the x-axis settings
// high-Cr / high-Cfm / high-Cfs (the named cost made dominant).
//
// The paper's finding: UNIT performs best in both regimes and stays stable
// across the settings, because it minimizes whichever cost dominates.
//
// Both panels dispatch through RunGrid, which fans the (setting x policy)
// cells across a thread pool; cell order (and hence the table) is
// deterministic for any jobs count.
//
// Usage: bench_fig5_penalties [scale=1.0] [seed=42] [jobs=0]
//        (jobs=0: one worker per hardware thread)

#include <chrono>
#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/common/thread_pool.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

void PrintTable2(const std::vector<NamedWeights>& below,
                 const std::vector<NamedWeights>& above) {
  std::cout << "--- Table 2: USM weights ---\n";
  TextTable table;
  table.SetHeader({"setting", "C_s", "C_r", "C_fm", "C_fs"});
  auto add = [&table](const char* regime, const NamedWeights& nw) {
    table.AddRow({std::string(regime) + " " + nw.name, Fmt(nw.weights.gain, 1),
                  Fmt(nw.weights.c_r, 1), Fmt(nw.weights.c_fm, 1),
                  Fmt(nw.weights.c_fs, 1)});
  };
  for (const auto& nw : below) add("penalties<1", nw);
  table.AddSeparator();
  for (const auto& nw : above) add("penalties>1", nw);
  table.Print(std::cout);
}

const std::vector<std::string> kPolicies = {"imu", "odu", "qmf", "unit"};

int RunPanel(const char* title, const std::vector<NamedWeights>& settings,
             double scale, uint64_t seed, int jobs) {
  GridSpec spec;
  spec.volumes = {UpdateVolume::kMedium};
  spec.distributions = {UpdateDistribution::kUniform};
  spec.policies = kPolicies;
  spec.weightings = settings;
  spec.scale = scale;
  spec.base_seed = seed;
  auto grid = RunGrid(spec, jobs);
  if (!grid.ok()) {
    std::cerr << grid.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\n--- " << title << " (trace "
            << grid->front().result.trace << ") ---\n";
  TextTable table;
  table.SetHeader({"setting", "imu", "odu", "qmf", "unit", "winner"});
  double unit_min = 1e9, unit_max = -1e9;
  // Cells arrive weighting-major, policy-minor: one row per setting.
  for (size_t s = 0; s < settings.size(); ++s) {
    std::vector<std::string> row = {settings[s].name};
    double best = -1e9;
    std::string winner;
    for (size_t p = 0; p < kPolicies.size(); ++p) {
      const GridCellResult& cell = (*grid)[s * kPolicies.size() + p];
      const double usm = cell.result.usm.mean();
      row.push_back(Fmt(usm, 3));
      if (usm > best) {
        best = usm;
        winner = cell.result.policy;
      }
      if (cell.result.policy == "unit") {
        unit_min = std::min(unit_min, usm);
        unit_max = std::max(unit_max, usm);
      }
    }
    row.push_back(winner);
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "UNIT stability across settings: min=" << Fmt(unit_min, 3)
            << " max=" << Fmt(unit_max, 3)
            << " spread=" << Fmt(unit_max - unit_min, 3) << "\n";
  return 0;
}

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed", "jobs"}); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);
  const int jobs = ResolveJobs(static_cast<int>(config->GetInt("jobs", 0)));

  std::cout << "=== Figure 5: USM under non-zero penalty costs ===\n\n";
  const auto below = Table2WeightsBelowOne();
  const auto above = Table2WeightsAboveOne();
  PrintTable2(below, above);

  const auto start = std::chrono::steady_clock::now();
  if (RunPanel("Fig 5(a): penalties < 1", below, scale, seed, jobs) != 0) {
    return 1;
  }
  if (RunPanel("Fig 5(b): penalties > 1", above, scale, seed, jobs) != 0) {
    return 1;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << "grid wall-clock: " << Fmt(wall_s, 3) << " s (jobs=" << jobs
            << ")\n";
  std::cout << "\npaper shape: UNIT best in both regimes; QMF suffers most "
               "under high C_r\n(it rejects aggressively); IMU/ODU suffer "
               "under high C_fm (they miss deadlines).\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
