// Ablation A5: intra-class dispatch discipline — the paper's EDF vs plain
// FCFS — for each policy on the med-unif trace, with multi-seed error bars.
// The classic RTDB result to check: under firm deadlines and overload, EDF
// completes substantially more queries than FCFS, and UNIT's admission
// control narrows (but does not erase) the gap because it pre-filters the
// hopeless work that FCFS would otherwise run to death.
//
// Usage: bench_ablation_sched [scale=0.5] [seeds=3] [seed=42]

#include <iostream>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed", "seeds"}); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 0.5);
  const int seeds = static_cast<int>(config->GetInt("seeds", 3));
  const uint64_t seed = config->GetInt("seed", 42);

  std::cout << "=== Ablation A5: EDF vs FCFS intra-class dispatch ===\n"
            << "(med-unif, " << seeds << " seeds; mean USM +/- stddev)\n\n";
  TextTable table;
  table.SetHeader({"policy", "EDF", "FCFS", "delta"});
  for (const char* policy : {"unit", "imu", "odu", "qmf"}) {
    double usm[2] = {0.0, 0.0};
    double dev[2] = {0.0, 0.0};
    for (int d = 0; d < 2; ++d) {
      EngineParams engine;
      engine.discipline =
          d == 0 ? QueueDiscipline::kEdf : QueueDiscipline::kFcfs;
      auto r = RunReplicated(UpdateVolume::kMedium,
                             UpdateDistribution::kUniform, policy,
                             UsmWeights{}, seeds, scale, seed, engine);
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        return 1;
      }
      usm[d] = r->usm.mean();
      dev[d] = r->usm.stddev();
    }
    table.AddRow({policy, Fmt(usm[0], 3) + " +/- " + Fmt(dev[0], 3),
                  Fmt(usm[1], 3) + " +/- " + Fmt(dev[1], 3),
                  Fmt(usm[0] - usm[1], 3)});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
