// Reproduces Table 1 of the paper: the nine update traces — {low, med,
// high} volume x {uniform, positive, negative} spatial distribution — with
// their total update counts and CPU utilizations, plus the achieved
// correlation against the query distribution (the paper targets |rho|=0.8).
//
// The nine generations are independent, so they fan out across a thread
// pool; rows are collected in grid order, so the table is identical for any
// jobs count.
//
// Usage: bench_table1_workloads [scale=1.0] [seed=42] [jobs=0] [shard=0]
//        (jobs=0: one worker per hardware thread)
//   shard=N (N >= 1) appends an engine-run section: each trace executed
//   under the unit policy on the sharded multi-engine runner
//   (shard/sharded.h) with N shards, reporting parent-level outcomes and
//   USM. shard=0 (default) keeps the generation-only table byte-identical
//   to earlier revisions.

#include <chrono>
#include <future>
#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/common/stats.h"
#include "unit/common/thread_pool.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed", "jobs", "shard",
                                     "shards"});
      !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);
  const int jobs = ResolveJobs(static_cast<int>(config->GetInt("jobs", 0)));
  // `shards=` is the canonical spelling; `shard=` stays accepted.
  const int shard =
      static_cast<int>(config->GetInt("shards", config->GetInt("shard", 0)));

  std::cout << "=== Table 1: update traces ===\n"
            << "(paper: 6144 / 30000 / 61440 updates = 15% / 75% / 150% CPU;\n"
            << " correlated traces target |rho| = 0.8 vs the query "
               "distribution)\n\n";

  TextTable table;
  table.SetHeader({"trace", "total updates", "update util", "query util",
                   "spearman(upd,qry)", "items w/ source"});
  const UpdateVolume volumes[] = {UpdateVolume::kLow, UpdateVolume::kMedium,
                                  UpdateVolume::kHigh};
  const UpdateDistribution dists[] = {UpdateDistribution::kUniform,
                                      UpdateDistribution::kPositive,
                                      UpdateDistribution::kNegative};

  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(jobs);
  std::vector<std::future<StatusOr<Workload>>> cells;
  for (UpdateDistribution dist : dists) {
    for (UpdateVolume volume : volumes) {
      cells.push_back(pool.Submit([volume, dist, scale, seed]() {
        return MakeStandardWorkload(volume, dist, scale, seed);
      }));
    }
  }
  size_t cell = 0;
  std::vector<Workload> generated;
  for (int d = 0; d < 3; ++d) {
    for (int v = 0; v < 3; ++v) {
      auto w = cells[cell++].get();
      if (!w.ok()) {
        std::cerr << w.status().ToString() << "\n";
        return 1;
      }
      auto accesses = w->QueryAccessCounts();
      auto updates = w->SourceUpdateCounts();
      std::vector<double> a(accesses.begin(), accesses.end());
      std::vector<double> u(updates.begin(), updates.end());
      table.AddRow({w->update_trace_name,
                    std::to_string(w->TotalSourceUpdates()),
                    FmtPercent(w->UpdateUtilization()),
                    FmtPercent(w->QueryUtilization()),
                    Fmt(SpearmanCorrelation(u, a), 3),
                    std::to_string(w->updates.size())});
      generated.push_back(*std::move(w));
    }
    table.AddSeparator();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  table.Print(std::cout);
  std::cout << "grid wall-clock: " << Fmt(wall_s, 3) << " s (jobs=" << jobs
            << ")\n";

  // Optional engine-run section: each trace through the sharded runner,
  // parent-level (post-CrossShardJoin) accounting with the naive weighting.
  if (shard >= 1) {
    std::cout << "\n--- engine runs (unit policy, shard=" << shard
              << ", jobs=" << jobs << ") ---\n";
    TextTable runs;
    runs.SetHeader({"trace", "submitted", "success", "rejected", "dmf", "dsf",
                    "usm"});
    for (const Workload& w : generated) {
      auto r = RunShardedExperiment(w, "unit", UsmWeights{}, shard, jobs);
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        return 1;
      }
      const OutcomeCounts& c = r->metrics.counts;
      runs.AddRow({r->trace, std::to_string(c.submitted),
                   std::to_string(c.success), std::to_string(c.rejected),
                   std::to_string(c.dmf), std::to_string(c.dsf),
                   Fmt(r->usm, 3)});
    }
    runs.Print(std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
