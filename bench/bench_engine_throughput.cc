// Perf-tracking bench of whole-engine throughput: runs fixed med-unif and
// high-neg cells for each of the paper's four policies (plus a heavy-traffic
// med-unif cell that stresses the admission hot path) and emits
// BENCH_engine.json — events/sec, wall-clock, and peak ready-queue depth per
// cell — so CI can track engine performance across commits. The human-
// readable table goes to stdout; the JSON to `out=` (default
// BENCH_engine.json).
//
// Usage: bench_engine_throughput [scale=0.2] [seed=42] [reps=3]
//                                [out=BENCH_engine.json]
//   reps engine runs per cell; wall-clock is the fastest rep (the usual
//   min-of-N noise filter), events/sec derives from it.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"
#include "unit/workload/query_trace.h"
#include "unit/workload/update_trace.h"

namespace unitdb {
namespace {

struct CellResult {
  std::string cell;
  std::string policy;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  int64_t events_processed = 0;
  int64_t events_cancelled = 0;
  int64_t events_compacted = 0;
  int peak_ready_depth = 0;
  int64_t txn_live_peak = 0;
  int64_t txn_slots_created = 0;
  int64_t readset_spill = 0;
  double usm = 0.0;
};

/// One named workload cell: a Table 1 update trace over the standard query
/// stream, optionally at a boosted arrival rate (the heavy-traffic regime).
StatusOr<Workload> MakeCell(UpdateVolume volume, UpdateDistribution dist,
                            double rate_hz, double scale, uint64_t seed) {
  QueryTraceParams qp;
  qp.seed = seed;
  qp.duration =
      static_cast<SimDuration>(static_cast<double>(qp.duration) * scale);
  qp.base_rate_hz = rate_hz;
  auto workload = GenerateQueryTrace(qp);
  if (!workload.ok()) return workload.status();
  UpdateTraceParams up;
  up.volume = volume;
  up.distribution = dist;
  up.seed = seed + 1;
  Status s = GenerateUpdateTrace(up, *workload);
  if (!s.ok()) return s;
  return workload;
}

StatusOr<CellResult> RunCell(const Workload& w, const std::string& cell,
                             const std::string& policy, int reps) {
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  CellResult out;
  out.cell = cell;
  out.policy = policy;
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = RunExperiment(w, policy, weights);
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) return r.status();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    out.events_processed = r->metrics.events_processed;
    out.events_cancelled = r->metrics.events_cancelled;
    out.events_compacted = r->metrics.events_compacted;
    out.peak_ready_depth = r->metrics.peak_ready_depth;
    out.txn_live_peak = r->metrics.txn_live_peak;
    out.txn_slots_created = r->metrics.txn_slots_created;
    out.readset_spill = r->metrics.readset_spill;
    out.usm = r->usm;
  }
  out.wall_s = best;
  const int64_t retired = out.events_processed + out.events_compacted;
  out.events_per_sec = best > 0.0 ? static_cast<double>(retired) / best : 0.0;
  return out;
}

void WriteJson(const std::vector<CellResult>& results, double scale,
               uint64_t seed, int reps, const std::string& path) {
  std::ofstream f(path);
  f << "{\n";
  f << "  \"bench\": \"bench_engine_throughput\",\n";
  f << "  \"scale\": " << scale << ",\n";
  f << "  \"seed\": " << seed << ",\n";
  f << "  \"reps\": " << reps << ",\n";
  f << "  \"cells\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    f << "    {\"cell\": \"" << r.cell << "\", \"policy\": \"" << r.policy
      << "\", \"wall_s\": " << r.wall_s
      << ", \"events_per_sec\": " << r.events_per_sec
      << ", \"events_processed\": " << r.events_processed
      << ", \"events_cancelled\": " << r.events_cancelled
      << ", \"events_compacted\": " << r.events_compacted
      << ", \"peak_ready_depth\": " << r.peak_ready_depth
      << ", \"txn_live_peak\": " << r.txn_live_peak
      << ", \"txn_slots_created\": " << r.txn_slots_created
      << ", \"readset_spill\": " << r.readset_spill
      << ", \"usm\": " << r.usm << "}"
      << (i + 1 < results.size() ? "," : "") << "\n";
  }
  f << "  ]\n";
  f << "}\n";
}

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed", "reps", "out"});
      !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 0.2);
  const uint64_t seed = config->GetInt("seed", 42);
  const int reps = static_cast<int>(config->GetInt("reps", 3));
  const std::string out = config->GetString("out", "BENCH_engine.json");
  const std::vector<std::string> policies = {"imu", "odu", "qmf", "unit"};

  struct CellSpec {
    const char* name;
    UpdateVolume volume;
    UpdateDistribution dist;
    double rate_hz;
  };
  const CellSpec cells[] = {
      {"med-unif", UpdateVolume::kMedium, UpdateDistribution::kUniform, 5.0},
      {"high-neg", UpdateVolume::kHigh, UpdateDistribution::kNegative, 5.0},
      {"med-unif-heavy", UpdateVolume::kMedium, UpdateDistribution::kUniform,
       50.0},
  };

  std::cout << "=== Engine throughput (perf tracking) ===\n";
  TextTable table;
  table.SetHeader({"cell", "policy", "wall_s", "events/s", "peak_rq",
                   "cancelled", "compacted", "live_peak"});
  std::vector<CellResult> results;
  const auto grid_t0 = std::chrono::steady_clock::now();
  for (const CellSpec& cell : cells) {
    auto w = MakeCell(cell.volume, cell.dist, cell.rate_hz, scale, seed);
    if (!w.ok()) {
      std::cerr << w.status().ToString() << "\n";
      return 1;
    }
    for (const std::string& policy : policies) {
      auto r = RunCell(*w, cell.name, policy, reps);
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        return 1;
      }
      results.push_back(*r);
      table.AddRow({r->cell, r->policy, Fmt(r->wall_s, 4),
                    Fmt(r->events_per_sec, 0),
                    std::to_string(r->peak_ready_depth),
                    std::to_string(r->events_cancelled),
                    std::to_string(r->events_compacted),
                    std::to_string(r->txn_live_peak)});
    }
  }
  const auto grid_t1 = std::chrono::steady_clock::now();
  table.Print(std::cout);
  std::cout << "bench wall-clock: "
            << Fmt(std::chrono::duration<double>(grid_t1 - grid_t0).count(), 3)
            << " s\n";
  WriteJson(results, scale, seed, reps, out);
  std::cout << "wrote " << out << "\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
