// Closed-loop session bench (the paper's user-centric claim under load): a
// pool of user sessions retries rejected / deadline-missed queries with
// capped exponential backoff while a canned retry storm squeezes the
// server, and the sweep reports how session count x patience moves the
// user-visible outcome — abandonment rate, p90 client retry delay, USM, and
// post-storm settling time — with overload shedding on.
//
// The "off" gate is the session layer's regression guard: sessions=0 with
// the shed watermark unset must be a strict behavioral no-op even when
// every other session knob is nonzero, so the bench re-runs each policy
// with a loaded-but-disabled SessionParams and exits nonzero if any
// headline metric differs bit-for-bit from the plain engine.
//
// All reported numbers are simulation outputs (not wall-clock), so the
// checked-in baseline under bench/baseline/ is machine-independent and
// compare_bench.py can gate on tight thresholds.
//
// Usage: bench_fig8_closed_loop [scale=0.25] [seed=42] [epsilon=0.25]
//                               [rate=40] [shed=8] [policy=unit]
//                               [sessions=8,24,48] [patience=0,2]
//                               [trace_dir=DIR] [out=BENCH_session.json]
//   trace_dir= keeps the per-cell JSONL traces (default: a temp dir,
//   deleted after the p90 retry delay is extracted).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "unit/common/config.h"
#include "unit/faults/scenario.h"
#include "unit/faults/schedule.h"
#include "unit/faults/settling.h"
#include "unit/obs/trace_reader.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

struct CellResult {
  std::string cell;
  int sessions = 0;
  double patience_s = 0.0;
  double usm = 0.0;
  int64_t requests = 0;
  int64_t retries = 0;
  int64_t abandons = 0;
  int64_t shed = 0;
  double abandon_rate = 0.0;
  double retry_p90_s = 0.0;
  double recover_s = -1.0;
};

/// sessions=0 must take zero divergent branches regardless of the other
/// session knobs: compare every headline metric against the plain engine,
/// bit for bit, exactly like bench_fig7's empty-schedule gate.
Status CheckSessionsOffNoOp(const Workload& workload,
                            const std::string& policy,
                            const UsmWeights& weights) {
  EngineParams off;
  off.session.sessions = 0;
  off.session.max_retries = 9;
  off.session.patience = SecondsToSim(1.0);
  off.session.backoff_base = MillisToSim(7.0);
  off.session.seed = 0xDEADBEEFULL;
  off.shed_watermark = 0;
  auto with = RunExperiment(workload, policy, weights, off);
  if (!with.ok()) return with.status();
  auto plain = RunExperiment(workload, policy, weights);
  if (!plain.ok()) return plain.status();

  const RunMetrics& a = with->metrics;
  const RunMetrics& b = plain->metrics;
  const bool same =
      with->usm == plain->usm && a.counts.submitted == b.counts.submitted &&
      a.counts.success == b.counts.success &&
      a.counts.rejected == b.counts.rejected && a.counts.dmf == b.counts.dmf &&
      a.counts.dsf == b.counts.dsf && a.busy_s == b.busy_s &&
      a.events_processed == b.events_processed &&
      a.events_cancelled == b.events_cancelled &&
      a.preemptions == b.preemptions && a.lock_restarts == b.lock_restarts &&
      a.update_commits == b.update_commits &&
      a.query_response_s.sum() == b.query_response_s.sum() &&
      a.session_requests == 0 && a.session_retries == 0 &&
      a.session_abandons == 0 && a.queries_shed == 0;
  if (!same) {
    return Status(StatusCode::kInternal,
                  "disabled session layer perturbed policy '" + policy +
                      "' (usm " + Fmt(with->usm, 6) + " vs " +
                      Fmt(plain->usm, 6) + ")");
  }
  return Status::Ok();
}

/// p90 of the kSessionRetry client delays recorded in one cell's trace.
StatusOr<double> RetryDelayP90(const std::string& trace_path) {
  auto events = ReadTraceFile(trace_path);
  if (!events.ok()) return events.status();
  std::vector<SimDuration> delays;
  for (const TraceEvent& e : *events) {
    if (e.type == TraceEventType::kSessionRetry) delays.push_back(e.lag);
  }
  if (delays.empty()) return 0.0;
  std::sort(delays.begin(), delays.end());
  const size_t idx = (delays.size() * 9) / 10;
  return SimToSeconds(delays[std::min(idx, delays.size() - 1)]);
}

void WriteJson(const std::vector<CellResult>& results,
               const std::string& policy, double scale, uint64_t seed,
               double epsilon, double rate_hz, int shed_watermark,
               const std::string& path) {
  std::ofstream f(path);
  f << "{\n";
  f << "  \"bench\": \"bench_fig8_closed_loop\",\n";
  f << "  \"policy\": \"" << policy << "\",\n";
  f << "  \"scale\": " << scale << ",\n";
  f << "  \"seed\": " << seed << ",\n";
  f << "  \"epsilon\": " << epsilon << ",\n";
  f << "  \"rate_hz\": " << rate_hz << ",\n";
  f << "  \"shed_watermark\": " << shed_watermark << ",\n";
  f << "  \"cells\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    f << "    {\"cell\": \"" << r.cell << "\", \"sessions\": " << r.sessions
      << ", \"patience_s\": " << r.patience_s << ", \"usm\": " << r.usm
      << ", \"requests\": " << r.requests << ", \"retries\": " << r.retries
      << ", \"abandons\": " << r.abandons << ", \"shed\": " << r.shed
      << ", \"abandon_rate\": " << r.abandon_rate
      << ", \"retry_p90_s\": " << r.retry_p90_s
      << ", \"recover_s\": " << r.recover_s << "}"
      << (i + 1 < results.size() ? "," : "") << "\n";
  }
  f << "  ]\n";
  f << "}\n";
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed", "epsilon", "rate",
                                     "shed", "policy", "sessions", "patience",
                                     "trace_dir", "out"});
      !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 0.25);
  const uint64_t seed = config->GetInt("seed", 42);
  const double epsilon = config->GetDouble("epsilon", 0.25);
  const double rate_hz = config->GetDouble("rate", 40.0);
  const int shed_watermark = static_cast<int>(config->GetInt("shed", 8));
  const std::string policy = config->GetString("policy", "unit");
  const std::string out = config->GetString("out", "BENCH_session.json");
  std::vector<int> session_counts;
  for (const std::string& tok :
       SplitCsv(config->GetString("sessions", "8,24,48"))) {
    session_counts.push_back(std::stoi(tok));
  }
  std::vector<double> patience_levels;
  for (const std::string& tok :
       SplitCsv(config->GetString("patience", "0,2"))) {
    patience_levels.push_back(std::stod(tok));
  }
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};

  std::string trace_dir = config->GetString("trace_dir", "");
  const bool keep_traces = !trace_dir.empty();
  if (!keep_traces) {
    trace_dir = (std::filesystem::temp_directory_path() /
                 "bench_fig8_traces")
                    .string();
  }
  std::filesystem::create_directories(trace_dir);

  auto workload = MakeStandardWorkload(
      UpdateVolume::kMedium, UpdateDistribution::kUniform, scale, seed);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  const double duration_s = SimToSeconds(workload->duration);

  std::ostringstream spec_text;
  spec_text << "name = retry-storm\nfault0.kind = retry-storm\n"
            << "fault0.start_s = " << 0.4 * duration_s << "\n"
            << "fault0.end_s = " << 0.7 * duration_s << "\n"
            << "fault0.rate_hz = " << rate_hz << "\n";
  auto spec = FaultScenarioSpec::Parse(spec_text.str());
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }
  auto schedule = FaultSchedule::Compile(*spec, *workload, seed);
  if (!schedule.ok()) {
    std::cerr << schedule.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== Closed-loop sessions under a retry storm (Fig. 8) ===\n";
  for (const char* p : {"unit", "unit-bare", "imu", "qmf"}) {
    if (Status s = CheckSessionsOffNoOp(*workload, p, weights); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "sessions-off no-op check: ok (4 policies)\n";

  TextTable table;
  table.SetHeader({"cell", "sessions", "patience_s", "usm", "abandon_rate",
                   "retry_p90_s", "recover_s"});
  std::vector<CellResult> results;
  for (int sessions : session_counts) {
    for (double patience_s : patience_levels) {
      EngineParams engine;
      engine.session.sessions = sessions;
      engine.session.max_retries = 3;
      engine.session.patience =
          patience_s > 0.0 ? SecondsToSim(patience_s) : 0;
      engine.shed_watermark = shed_watermark;

      std::ostringstream cell_name;
      cell_name << "s" << sessions << "_p" << patience_s;
      const std::string trace_path =
          trace_dir + "/fig8_" + cell_name.str() + ".jsonl";
      ObsOptions obs;
      obs.series = true;
      obs.trace_path = trace_path;
      auto r = RunFaultedExperiment(*workload, policy, weights, *schedule,
                                    obs, engine, {}, epsilon);
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        return 1;
      }
      auto p90 = RetryDelayP90(trace_path);
      if (!p90.ok()) {
        std::cerr << p90.status().ToString() << "\n";
        return 1;
      }

      CellResult cell;
      cell.cell = cell_name.str();
      cell.sessions = sessions;
      cell.patience_s = patience_s;
      cell.usm = r->usm;
      cell.requests = r->metrics.session_requests;
      cell.retries = r->metrics.session_retries;
      cell.abandons = r->metrics.session_abandons;
      cell.shed = r->metrics.queries_shed;
      cell.abandon_rate =
          cell.requests > 0
              ? static_cast<double>(cell.abandons) /
                    static_cast<double>(cell.requests)
              : 0.0;
      cell.retry_p90_s = *p90;
      cell.recover_s = r->disturbance.valid ? r->disturbance.recover_s : -1.0;
      results.push_back(cell);
      table.AddRow({cell.cell, std::to_string(sessions), Fmt(patience_s, 1),
                    Fmt(cell.usm, 4), Fmt(cell.abandon_rate, 4),
                    Fmt(cell.retry_p90_s, 4),
                    cell.recover_s < 0 ? "never" : Fmt(cell.recover_s, 1)});
    }
  }
  table.Print(std::cout);
  WriteJson(results, policy, scale, seed, epsilon, rate_hz, shed_watermark,
            out);
  std::cout << "wrote " << out << "\n";
  if (!keep_traces) {
    std::error_code ec;
    std::filesystem::remove_all(trace_dir, ec);
  }
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
