// Reproduces Figure 6 of the paper: the outcome-ratio decomposition
// (Success / Rejection / DMF / DSF shares of all submitted queries) on the
// med-unif trace.
//
//   6(a) IMU, ODU, QMF — weight-insensitive, one decomposition each
//   6(b) UNIT under the three Fig 5(a) weight settings — the mix shifts to
//        shrink whichever failure carries the highest penalty
//
// Usage: bench_fig6_ratio_decomposition [scale=1.0] [seed=42]

#include <iostream>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

void AddDecomposition(TextTable& table, const std::string& label,
                      const OutcomeCounts& c) {
  table.AddRow({label, FmtPercent(c.SuccessRatio()),
                FmtPercent(c.RejectionRatio()), FmtPercent(c.DmfRatio()),
                FmtPercent(c.DsfRatio())});
}

void PrintBars(const std::string& label, const OutcomeCounts& c) {
  std::cout << "  " << label << "  S " << Bar(c.SuccessRatio(), 1.0, 30)
            << "  R " << Bar(c.RejectionRatio(), 1.0, 10) << "  M "
            << Bar(c.DmfRatio(), 1.0, 10) << "  F "
            << Bar(c.DsfRatio(), 1.0, 10) << "\n";
}

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);

  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, scale, seed);
  if (!w.ok()) {
    std::cerr << w.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== Figure 6: outcome-ratio decomposition (med-unif) ===\n";

  std::cout << "\n--- Fig 6(a): IMU / ODU / QMF (weight-insensitive) ---\n";
  TextTable a;
  a.SetHeader({"policy", "success", "rejection", "DMF", "DSF"});
  for (const char* policy : {"imu", "odu", "qmf"}) {
    auto r = RunExperiment(*w, policy, UsmWeights{});
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    AddDecomposition(a, policy, r->metrics.counts);
    PrintBars(policy, r->metrics.counts);
  }
  a.Print(std::cout);

  std::cout << "\n--- Fig 6(b): UNIT under the Fig 5(a) weightings ---\n";
  TextTable b;
  b.SetHeader({"setting", "success", "rejection", "DMF", "DSF", "USM"});
  for (const auto& nw : Table2WeightsBelowOne()) {
    auto r = RunExperiment(*w, "unit", nw.weights);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    const OutcomeCounts& c = r->metrics.counts;
    b.AddRow({nw.name, FmtPercent(c.SuccessRatio()),
              FmtPercent(c.RejectionRatio()), FmtPercent(c.DmfRatio()),
              FmtPercent(c.DsfRatio()), Fmt(r->usm, 3)});
    PrintBars("unit/" + nw.name, c);
  }
  b.Print(std::cout);

  std::cout << "\npaper shape: (1) UNIT's success share tops the baselines; "
               "(2) UNIT's failure mix\nshifts away from whichever failure "
               "is priciest; (3) the baselines' decompositions\nare "
               "identical across weightings, with QMF showing a large "
               "rejection share.\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
