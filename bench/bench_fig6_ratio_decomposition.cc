// Reproduces Figure 6 of the paper: the outcome-ratio decomposition
// (Success / Rejection / DMF / DSF shares of all submitted queries) on the
// med-unif trace.
//
//   6(a) IMU, ODU, QMF — weight-insensitive, one decomposition each
//   6(b) UNIT under the three Fig 5(a) weight settings — the mix shifts to
//        shrink whichever failure carries the highest penalty
//
// Both panels dispatch through RunGrid, which fans the cells across a
// thread pool; cell order (and hence the tables) is deterministic for any
// jobs count.
//
// Usage: bench_fig6_ratio_decomposition [scale=1.0] [seed=42] [jobs=0]
//        (jobs=0: one worker per hardware thread)

#include <chrono>
#include <iostream>

#include "unit/common/config.h"
#include "unit/common/thread_pool.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

void AddDecomposition(TextTable& table, const std::string& label,
                      const ReplicatedResult& r) {
  table.AddRow({label, FmtPercent(r.success_ratio.mean()),
                FmtPercent(r.rejection_ratio.mean()),
                FmtPercent(r.dmf_ratio.mean()),
                FmtPercent(r.dsf_ratio.mean())});
}

void PrintBars(const std::string& label, const ReplicatedResult& r) {
  std::cout << "  " << label << "  S " << Bar(r.success_ratio.mean(), 1.0, 30)
            << "  R " << Bar(r.rejection_ratio.mean(), 1.0, 10) << "  M "
            << Bar(r.dmf_ratio.mean(), 1.0, 10) << "  F "
            << Bar(r.dsf_ratio.mean(), 1.0, 10) << "\n";
}

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);
  const int jobs = ResolveJobs(static_cast<int>(config->GetInt("jobs", 0)));

  // Both panels run on the med-unif trace.
  GridSpec spec;
  spec.volumes = {UpdateVolume::kMedium};
  spec.distributions = {UpdateDistribution::kUniform};
  spec.scale = scale;
  spec.base_seed = seed;

  std::cout << "=== Figure 6: outcome-ratio decomposition (med-unif) ===\n";

  std::cout << "\n--- Fig 6(a): IMU / ODU / QMF (weight-insensitive) ---\n";
  GridSpec spec_a = spec;
  spec_a.policies = {"imu", "odu", "qmf"};  // empty weightings: naive USM
  const auto t0 = std::chrono::steady_clock::now();
  auto grid_a = RunGrid(spec_a, jobs);
  if (!grid_a.ok()) {
    std::cerr << grid_a.status().ToString() << "\n";
    return 1;
  }
  TextTable a;
  a.SetHeader({"policy", "success", "rejection", "DMF", "DSF"});
  for (const GridCellResult& cell : *grid_a) {
    AddDecomposition(a, cell.result.policy, cell.result);
    PrintBars(cell.result.policy, cell.result);
  }
  a.Print(std::cout);

  std::cout << "\n--- Fig 6(b): UNIT under the Fig 5(a) weightings ---\n";
  GridSpec spec_b = spec;
  spec_b.policies = {"unit"};
  spec_b.weightings = Table2WeightsBelowOne();
  auto grid_b = RunGrid(spec_b, jobs);
  if (!grid_b.ok()) {
    std::cerr << grid_b.status().ToString() << "\n";
    return 1;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  TextTable b;
  b.SetHeader({"setting", "success", "rejection", "DMF", "DSF", "USM"});
  for (const GridCellResult& cell : *grid_b) {
    const ReplicatedResult& r = cell.result;
    b.AddRow({cell.weights_name, FmtPercent(r.success_ratio.mean()),
              FmtPercent(r.rejection_ratio.mean()),
              FmtPercent(r.dmf_ratio.mean()), FmtPercent(r.dsf_ratio.mean()),
              Fmt(r.usm.mean(), 3)});
    PrintBars("unit/" + cell.weights_name, r);
  }
  b.Print(std::cout);
  std::cout << "grid wall-clock: " << Fmt(wall_s, 3) << " s (jobs=" << jobs
            << ")\n";

  std::cout << "\npaper shape: (1) UNIT's success share tops the baselines; "
               "(2) UNIT's failure mix\nshifts away from whichever failure "
               "is priciest; (3) the baselines' decompositions\nare "
               "identical across weightings, with QMF showing a large "
               "rejection share.\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
