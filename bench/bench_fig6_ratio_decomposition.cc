// Reproduces Figure 6 of the paper: the outcome-ratio decomposition
// (Success / Rejection / DMF / DSF shares of all submitted queries) on the
// med-unif trace.
//
//   6(a) IMU, ODU, QMF — weight-insensitive, one decomposition each
//   6(b) UNIT under the three Fig 5(a) weight settings — the mix shifts to
//        shrink whichever failure carries the highest penalty
//
// Both panels dispatch through RunGrid, which fans the cells across a
// thread pool; cell order (and hence the tables) is deterministic for any
// jobs count.
//
// Usage: bench_fig6_ratio_decomposition [scale=1.0] [seed=42] [jobs=0]
//                                       [shard=1] [trace_dir=DIR]
//        (jobs=0: one worker per hardware thread)
//   shard=N runs every grid cell through the sharded multi-engine runner
//   (shard/sharded.h) with N shards; the decomposition is then over joined
//   parent outcomes (Eq. 5 at the CrossShardJoin barrier). Traced re-runs
//   (trace_dir) stay monolithic either way.
//   trace_dir=DIR additionally re-runs every cell single-shot with
//   observability attached, writing DIR/med-unif-<label>.jsonl (event
//   trace, the input format of tools/trace_check) and
//   DIR/med-unif-<label>-series.csv (per-control-window time series); the
//   series' usm_* columns are the decomposition the panels summarise.

#include <chrono>
#include <filesystem>
#include <iostream>

#include "unit/common/config.h"
#include "unit/common/thread_pool.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

void AddDecomposition(TextTable& table, const std::string& label,
                      const ReplicatedResult& r) {
  table.AddRow({label, FmtPercent(r.success_ratio.mean()),
                FmtPercent(r.rejection_ratio.mean()),
                FmtPercent(r.dmf_ratio.mean()),
                FmtPercent(r.dsf_ratio.mean())});
}

void PrintBars(const std::string& label, const ReplicatedResult& r) {
  std::cout << "  " << label << "  S " << Bar(r.success_ratio.mean(), 1.0, 30)
            << "  R " << Bar(r.rejection_ratio.mean(), 1.0, 10) << "  M "
            << Bar(r.dmf_ratio.mean(), 1.0, 10) << "  F "
            << Bar(r.dsf_ratio.mean(), 1.0, 10) << "\n";
}

// One single-shot traced run on `workload`, trace + series files named
// DIR/<trace>-<label>.*; prints a one-line summary.
Status RunTracedCell(const Workload& workload, const std::string& policy,
                     const UsmWeights& weights, const std::string& trace_dir,
                     const std::string& label) {
  ObsOptions obs;
  const std::string stem =
      trace_dir + "/" + workload.update_trace_name + "-" + label;
  obs.trace_path = stem + ".jsonl";
  obs.series_csv_path = stem + "-series.csv";
  auto r = RunTracedExperiment(workload, policy, weights, obs);
  if (!r.ok()) return r.status();
  std::cout << "  " << workload.update_trace_name << " " << label
            << " usm=" << Fmt(r->usm, 3) << " windows=" << r->series.size()
            << "\n";
  return Status::Ok();
}

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys(
          {"scale", "seed", "jobs", "shard", "shards", "trace_dir"});
      !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);
  const int jobs = ResolveJobs(static_cast<int>(config->GetInt("jobs", 0)));
  const std::string trace_dir = config->GetString("trace_dir", "");

  // Both panels run on the med-unif trace.
  GridSpec spec;
  spec.volumes = {UpdateVolume::kMedium};
  spec.distributions = {UpdateDistribution::kUniform};
  spec.scale = scale;
  spec.base_seed = seed;
  // `shards=` is the canonical spelling; `shard=` stays accepted.
  spec.shards =
      static_cast<int>(config->GetInt("shards", config->GetInt("shard", 1)));

  std::cout << "=== Figure 6: outcome-ratio decomposition (med-unif) ===\n";
  if (spec.shards > 1) {
    std::cout << "(sharded runner: shard=" << spec.shards
              << ", parent-level Eq. 5 accounting)\n";
  }

  std::cout << "\n--- Fig 6(a): IMU / ODU / QMF (weight-insensitive) ---\n";
  GridSpec spec_a = spec;
  spec_a.policies = {"imu", "odu", "qmf"};  // empty weightings: naive USM
  const auto t0 = std::chrono::steady_clock::now();
  auto grid_a = RunGrid(spec_a, jobs);
  if (!grid_a.ok()) {
    std::cerr << grid_a.status().ToString() << "\n";
    return 1;
  }
  TextTable a;
  a.SetHeader({"policy", "success", "rejection", "DMF", "DSF"});
  for (const GridCellResult& cell : *grid_a) {
    AddDecomposition(a, cell.result.policy, cell.result);
    PrintBars(cell.result.policy, cell.result);
  }
  a.Print(std::cout);

  std::cout << "\n--- Fig 6(b): UNIT under the Fig 5(a) weightings ---\n";
  GridSpec spec_b = spec;
  spec_b.policies = {"unit"};
  spec_b.weightings = Table2WeightsBelowOne();
  auto grid_b = RunGrid(spec_b, jobs);
  if (!grid_b.ok()) {
    std::cerr << grid_b.status().ToString() << "\n";
    return 1;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  TextTable b;
  b.SetHeader({"setting", "success", "rejection", "DMF", "DSF", "USM"});
  for (const GridCellResult& cell : *grid_b) {
    const ReplicatedResult& r = cell.result;
    b.AddRow({cell.weights_name, FmtPercent(r.success_ratio.mean()),
              FmtPercent(r.rejection_ratio.mean()),
              FmtPercent(r.dmf_ratio.mean()), FmtPercent(r.dsf_ratio.mean()),
              Fmt(r.usm.mean(), 3)});
    PrintBars("unit/" + cell.weights_name, r);
  }
  b.Print(std::cout);
  std::cout << "grid wall-clock: " << Fmt(wall_s, 3) << " s (jobs=" << jobs
            << ")\n";

  if (!trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    if (ec) {
      std::cerr << "cannot create " << trace_dir << ": " << ec.message()
                << "\n";
      return 1;
    }
    std::cout << "\n--- traced runs (JSONL + window series) -> " << trace_dir
              << " ---\n";
    auto workload = MakeStandardWorkload(UpdateVolume::kMedium,
                                         UpdateDistribution::kUniform, scale,
                                         seed);
    if (!workload.ok()) {
      std::cerr << workload.status().ToString() << "\n";
      return 1;
    }
    for (const std::string& policy : spec_a.policies) {
      Status s = RunTracedCell(*workload, policy, UsmWeights{}, trace_dir,
                               policy);
      if (!s.ok()) {
        std::cerr << s.ToString() << "\n";
        return 1;
      }
    }
    for (const NamedWeights& nw : spec_b.weightings) {
      Status s = RunTracedCell(*workload, "unit", nw.weights, trace_dir,
                               "unit-" + nw.name);
      if (!s.ok()) {
        std::cerr << s.ToString() << "\n";
        return 1;
      }
    }
  }

  std::cout << "\npaper shape: (1) UNIT's success share tops the baselines; "
               "(2) UNIT's failure mix\nshifts away from whichever failure "
               "is priciest; (3) the baselines' decompositions\nare "
               "identical across weightings, with QMF showing a large "
               "rejection share.\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
