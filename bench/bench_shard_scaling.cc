// Perf-tracking bench of the sharded multi-engine runner: sweeps shard count
// {1, 2, 4, 8} x arrival rate over a fixed workload, runs each cell with
// jobs=shards (one worker per shard), and emits BENCH_shard.json with
// wall-clock, aggregate events/sec, the parent-level outcome counts, and the
// cross-shard split volume per cell. Two properties under test:
//
//   * Throughput scaling: aggregate events/sec must not fall off a cliff as
//     shards grow — on a multi-core box it grows with shard count; on a
//     single core it stays near-flat (partitioning adds only O(queries)
//     split/join work). The CI gate (compare_bench.py) only checks for
//     drops, so a core-starved runner still passes.
//   * Partitioning overhead stays bounded: the sharded runner at shards=1
//     must be within noise of the monolithic engine (the sh1 row doubles as
//     that control — it runs the full partition/join path over one shard).
//
// Usage: bench_shard_scaling [scale=1.0] [rate=20] [seed=42] [reps=2]
//                            [policy=unit] [jobs=0] [out=BENCH_shard.json]
//   scale   multiplies the 120 s base horizon (CI runs scale=0.1)
//   rate    arrival rate of the low-rate row, Hz (the high row runs at 4x)
//   jobs    worker threads per cell; 0 = one per shard
//   reps    sharded runs per cell; wall-clock is the fastest rep

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "unit/common/config.h"
#include "unit/shard/sharded.h"
#include "unit/sim/report.h"
#include "unit/workload/query_trace.h"
#include "unit/workload/update_trace.h"

namespace unitdb {
namespace {

struct CellResult {
  std::string cell;
  int shards = 1;
  int jobs = 1;
  double rate_hz = 0.0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  int64_t events_processed = 0;
  int64_t submitted = 0;
  int64_t success = 0;
  double usm = 0.0;
  int64_t cross_shard_queries = 0;
  int64_t subqueries = 0;
  int64_t txn_live_peak = 0;
};

StatusOr<Workload> MakeWorkload(double duration_s, double rate_hz,
                                uint64_t seed) {
  QueryTraceParams qp;
  qp.seed = seed;
  qp.duration = SecondsToSim(duration_s);
  qp.base_rate_hz = rate_hz;
  // Stationary Poisson arrivals: cell-to-cell wall-clock then tracks shard
  // overhead, not which slice of a flash crowd a shard happened to own.
  qp.burst_rate_multiplier = 1.0;
  qp.deadline_hi_factor = 3.0;
  auto workload = GenerateQueryTrace(qp);
  if (!workload.ok()) return workload.status();
  UpdateTraceParams up;
  up.volume = UpdateVolume::kMedium;
  up.seed = seed + 1;
  Status s = GenerateUpdateTrace(up, *workload);
  if (!s.ok()) return s;
  return workload;
}

StatusOr<CellResult> RunCell(const Workload& w, const std::string& cell,
                             const std::string& policy, int shards, int jobs,
                             int reps) {
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  ShardedParams params;
  params.shards = shards;
  params.jobs = jobs;
  CellResult out;
  out.cell = cell;
  out.shards = shards;
  out.jobs = jobs;
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = RunSharded(w, policy, weights, params);
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) return r.status();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    out.events_processed = r->metrics.events_processed;
    out.submitted = r->metrics.counts.submitted;
    out.success = r->metrics.counts.success;
    out.usm = r->usm;
    out.cross_shard_queries = r->cross_shard_queries;
    out.subqueries = r->subqueries;
    out.txn_live_peak = r->metrics.txn_live_peak;
  }
  out.wall_s = best;
  out.events_per_sec =
      best > 0.0 ? static_cast<double>(out.events_processed) / best : 0.0;
  return out;
}

void WriteJson(const std::vector<CellResult>& results, double scale,
               double rate, uint64_t seed, int reps,
               const std::string& policy, const std::string& path) {
  std::ofstream f(path);
  f << "{\n";
  f << "  \"bench\": \"bench_shard_scaling\",\n";
  f << "  \"scale\": " << scale << ",\n";
  f << "  \"rate\": " << rate << ",\n";
  f << "  \"seed\": " << seed << ",\n";
  f << "  \"reps\": " << reps << ",\n";
  f << "  \"policy\": \"" << policy << "\",\n";
  f << "  \"cells\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    f << "    {\"cell\": \"" << r.cell << "\", \"shards\": " << r.shards
      << ", \"jobs\": " << r.jobs << ", \"rate_hz\": " << r.rate_hz
      << ", \"wall_s\": " << r.wall_s
      << ", \"events_per_sec\": " << r.events_per_sec
      << ", \"events_processed\": " << r.events_processed
      << ", \"submitted\": " << r.submitted << ", \"success\": " << r.success
      << ", \"usm\": " << r.usm
      << ", \"cross_shard_queries\": " << r.cross_shard_queries
      << ", \"subqueries\": " << r.subqueries
      << ", \"txn_live_peak\": " << r.txn_live_peak << "}"
      << (i + 1 < results.size() ? "," : "") << "\n";
  }
  f << "  ]\n";
  f << "}\n";
}

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys(
          {"scale", "rate", "seed", "reps", "policy", "jobs", "out"});
      !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const double rate = config->GetDouble("rate", 20.0);
  const uint64_t seed = config->GetInt("seed", 42);
  const int reps = static_cast<int>(config->GetInt("reps", 2));
  const std::string policy = config->GetString("policy", "unit");
  const int jobs_override = static_cast<int>(config->GetInt("jobs", 0));
  const std::string out = config->GetString("out", "BENCH_shard.json");
  const double base_s = 120.0 * scale;

  const int shard_counts[] = {1, 2, 4, 8};
  const double rates[] = {rate, 4.0 * rate};

  std::cout << "=== Shard scaling (shards x arrival rate, jobs=shards) ===\n";
  TextTable table;
  table.SetHeader({"cell", "shards", "jobs", "rate", "wall_s", "events/s",
                   "submitted", "xshard", "subq", "usm"});
  std::vector<CellResult> results;
  for (const double rr : rates) {
    // One workload per rate row, shared across shard counts: the sweep
    // varies only the partitioning, so events/sec deltas are pure runner
    // overhead/parallelism.
    auto w = MakeWorkload(base_s, rr, seed);
    if (!w.ok()) {
      std::cerr << w.status().ToString() << "\n";
      return 1;
    }
    for (const int shards : shard_counts) {
      const int jobs = jobs_override > 0 ? jobs_override : shards;
      std::string cell = "sh";
      cell += std::to_string(shards);
      cell += "-r";
      cell += Fmt(rr, 0);
      auto r = RunCell(*w, cell, policy, shards, jobs, reps);
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        return 1;
      }
      r->rate_hz = rr;
      results.push_back(*r);
      table.AddRow({r->cell, std::to_string(r->shards),
                    std::to_string(r->jobs), Fmt(rr, 0), Fmt(r->wall_s, 4),
                    Fmt(r->events_per_sec, 0), std::to_string(r->submitted),
                    std::to_string(r->cross_shard_queries),
                    std::to_string(r->subqueries), Fmt(r->usm, 4)});
    }
  }
  table.Print(std::cout);

  // Context line for the scaling claim: aggregate events/sec of the widest
  // cell vs the single-shard control, per rate row.
  for (size_t row = 0; row < 2; ++row) {
    const CellResult& one = results[row * 4];
    const CellResult& wide = results[row * 4 + 3];
    const double ratio = one.events_per_sec > 0.0
                             ? wide.events_per_sec / one.events_per_sec
                             : 0.0;
    std::cout << "rate " << Fmt(one.rate_hz, 0) << ": sh8/sh1 events/sec = "
              << Fmt(ratio, 2) << "x (" << Fmt(one.events_per_sec, 0)
              << " -> " << Fmt(wide.events_per_sec, 0) << ")\n";
  }
  WriteJson(results, scale, rate, seed, reps, policy, out);
  std::cout << "wrote " << out << "\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
