// Ablation A3: which of UNIT's two mechanisms earns its keep where?
// Runs full UNIT against unit-noac (no admission control), unit-noum (no
// update frequency modulation) and unit-bare (neither) over the nine traces.
//
// Expected shape: modulation carries the win under uniform/negative update
// distributions (there is waste to shed); admission control carries the win
// under bursts and positively correlated updates (little to shed).
//
// The 9 x 4 (trace x variant) grid dispatches through RunGrid, which fans
// cells across a thread pool; row order is deterministic for any jobs count.
//
// Usage: bench_ablation_components [scale=1.0] [seed=42] [jobs=0]
//        (jobs=0: one worker per hardware thread)

#include <chrono>
#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/common/thread_pool.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed", "jobs"}); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);
  const int jobs = ResolveJobs(static_cast<int>(config->GetInt("jobs", 0)));

  std::cout << "=== Ablation A3: UNIT component contributions ===\n\n";

  GridSpec spec;  // default axes: the paper's nine Table 1 traces
  spec.policies = {"unit", "unit-noac", "unit-noum", "unit-bare"};
  spec.scale = scale;
  spec.base_seed = seed;

  const auto start = std::chrono::steady_clock::now();
  auto grid = RunGrid(spec, jobs);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!grid.ok()) {
    std::cerr << grid.status().ToString() << "\n";
    return 1;
  }

  TextTable table;
  table.SetHeader({"trace", "unit", "no-AC", "no-UM", "bare"});
  // Cells arrive trace-major, policy-minor: one row per trace, nine rows,
  // separated per distribution block like the paper's Table 1 layout.
  const size_t num_policies = spec.policies.size();
  for (size_t t = 0; t * num_policies < grid->size(); ++t) {
    std::vector<std::string> row = {
        (*grid)[t * num_policies].result.trace};
    for (size_t p = 0; p < num_policies; ++p) {
      row.push_back(Fmt((*grid)[t * num_policies + p].result.usm.mean(), 3));
    }
    table.AddRow(std::move(row));
    if (t % 3 == 2) table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "grid wall-clock: " << Fmt(wall_s, 3) << " s (jobs=" << jobs
            << ")\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
