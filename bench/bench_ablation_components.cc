// Ablation A3: which of UNIT's two mechanisms earns its keep where?
// Runs full UNIT against unit-noac (no admission control), unit-noum (no
// update frequency modulation) and unit-bare (neither) over the nine traces.
//
// Expected shape: modulation carries the win under uniform/negative update
// distributions (there is waste to shed); admission control carries the win
// under bursts and positively correlated updates (little to shed).
//
// Usage: bench_ablation_components [scale=1.0] [seed=42]

#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);

  std::cout << "=== Ablation A3: UNIT component contributions ===\n\n";
  TextTable table;
  table.SetHeader({"trace", "unit", "no-AC", "no-UM", "bare"});
  const UpdateVolume volumes[] = {UpdateVolume::kLow, UpdateVolume::kMedium,
                                  UpdateVolume::kHigh};
  const UpdateDistribution dists[] = {UpdateDistribution::kUniform,
                                      UpdateDistribution::kPositive,
                                      UpdateDistribution::kNegative};
  for (UpdateDistribution dist : dists) {
    for (UpdateVolume volume : volumes) {
      auto w = MakeStandardWorkload(volume, dist, scale, seed);
      if (!w.ok()) {
        std::cerr << w.status().ToString() << "\n";
        return 1;
      }
      auto results = RunPolicies(
          *w, {"unit", "unit-noac", "unit-noum", "unit-bare"}, UsmWeights{});
      if (!results.ok()) {
        std::cerr << results.status().ToString() << "\n";
        return 1;
      }
      std::vector<std::string> row = {w->update_trace_name};
      for (const auto& r : *results) row.push_back(Fmt(r.usm, 3));
      table.AddRow(std::move(row));
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
