#!/usr/bin/env python3
"""Perf-regression gate over bench JSON output.

Compares a fresh bench JSON (bench_engine_throughput's BENCH_engine.json,
bench_scale_horizon's BENCH_scale.json, bench_fig8_closed_loop's
BENCH_session.json, or bench_fig9_cache's BENCH_cache.json) against the
checked-in baseline under bench/baseline/ and exits non-zero if any cell
regressed. Every gate skips cells whose baseline lacks the field, so one
script serves every bench:

  * events/sec dropped by more than --max-regression (default 25%),
  * the transaction-slab footprint (txn_live_peak) grew by more than
    --max-slab-growth (default 25%) — a memory-flatness regression,
  * the session abandonment rate (abandon_rate) rose by more than
    --max-abandon-increase (default 0.02, absolute),
  * the p90 client retry delay (retry_p90_s) grew by more than
    --max-retry-p90-growth (default 25%, relative), or
  * the result-cache hit rate (hit_rate) dropped by more than
    --max-hit-rate-drop (default 0.05, absolute); capacity-0 cells report
    hit_rate 0.0 in both files and never trip it.

The generous events/sec threshold is deliberate: the baseline is recorded on
one machine and CI runs on another, so the gate is meant to catch algorithmic
regressions (an accidental O(n^2) admission scan, a lost fast path, a slab
leak), not single-digit scheduling noise. The closed-loop and cache fields
are deterministic simulation outputs, machine-independent by construction,
so their thresholds are tight. See bench/README.md for the full gate policy.
Regenerate baselines after intentional changes:

    bench_engine_throughput scale=0.1 reps=2 out=bench/baseline/BENCH_engine.json
    bench_scale_horizon base_s=60 rate=5 reps=2 out=bench/baseline/BENCH_scale.json
    bench_fig8_closed_loop out=bench/baseline/BENCH_session.json
    bench_fig9_cache out=bench/baseline/BENCH_cache.json

Usage: compare_bench.py BASELINE CURRENT [--max-regression 0.25]
                                         [--max-slab-growth 0.25]
                                         [--max-abandon-increase 0.02]
                                         [--max-retry-p90-growth 0.25]
                                         [--max-hit-rate-drop 0.05]
"""

import argparse
import json
import sys


def load_cells(path):
    with open(path) as f:
        doc = json.load(f)
    # bench_engine_throughput cells carry their policy; bench_scale_horizon
    # runs one policy for the whole sweep and records it at the top level.
    default_policy = doc.get("policy", "")
    return {
        (c["cell"], c.get("policy", default_policy)): c for c in doc["cells"]
    }


def main():
    # RawDescription keeps the full module docstring — with every gate flag
    # and the baseline-regeneration recipes — readable in --help output.
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="maximum tolerated fractional events/sec drop per cell",
    )
    parser.add_argument(
        "--max-slab-growth",
        type=float,
        default=0.25,
        help="maximum tolerated fractional txn_live_peak growth per cell",
    )
    parser.add_argument(
        "--max-abandon-increase",
        type=float,
        default=0.02,
        help="maximum tolerated absolute abandon_rate increase per cell",
    )
    parser.add_argument(
        "--max-retry-p90-growth",
        type=float,
        default=0.25,
        help="maximum tolerated fractional retry_p90_s growth per cell",
    )
    parser.add_argument(
        "--max-hit-rate-drop",
        type=float,
        default=0.05,
        help="maximum tolerated absolute cache hit_rate drop per cell",
    )
    args = parser.parse_args()

    baseline = load_cells(args.baseline)
    current = load_cells(args.current)

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"FAIL: current run is missing cells: {missing}")
        return 1

    failures = []
    width = max(len(f"{cell}/{policy}") for cell, policy in baseline)
    print(
        f"{'cell':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}"
        f"  {'slab':>12}"
    )
    for (cell, policy), base in sorted(baseline.items()):
        cur = current[(cell, policy)]
        base_eps = base.get("events_per_sec")
        cur_eps = cur.get("events_per_sec")
        delta = 0.0
        marker = ""
        if base_eps is not None and cur_eps is not None:
            delta = (cur_eps - base_eps) / base_eps if base_eps > 0 else 0.0
            if delta < -args.max_regression:
                failures.append(
                    (cell, policy, "events_per_sec", base_eps, cur_eps,
                     delta, -args.max_regression)
                )
                marker = "  << REGRESSION"
        else:
            base_eps = cur_eps = 0.0

        slab_col = ""
        base_peak = base.get("txn_live_peak")
        cur_peak = cur.get("txn_live_peak")
        if base_peak is not None and cur_peak is not None and base_peak > 0:
            growth = (cur_peak - base_peak) / base_peak
            slab_col = f"{base_peak}->{cur_peak}"
            if growth > args.max_slab_growth:
                failures.append(
                    (cell, policy, "txn_live_peak", base_peak, cur_peak,
                     growth, args.max_slab_growth)
                )
                marker = "  << SLAB GROWTH"

        base_ar = base.get("abandon_rate")
        cur_ar = cur.get("abandon_rate")
        if base_ar is not None and cur_ar is not None:
            increase = cur_ar - base_ar
            if increase > args.max_abandon_increase:
                failures.append(
                    (cell, policy, "abandon_rate", base_ar, cur_ar,
                     increase, args.max_abandon_increase)
                )
                marker = "  << ABANDON RATE"

        base_p90 = base.get("retry_p90_s")
        cur_p90 = cur.get("retry_p90_s")
        if base_p90 is not None and cur_p90 is not None and base_p90 > 0:
            growth = (cur_p90 - base_p90) / base_p90
            if growth > args.max_retry_p90_growth:
                failures.append(
                    (cell, policy, "retry_p90_s", base_p90, cur_p90,
                     growth, args.max_retry_p90_growth)
                )
                marker = "  << RETRY P90"

        base_hr = base.get("hit_rate")
        cur_hr = cur.get("hit_rate")
        if base_hr is not None and cur_hr is not None:
            drop = base_hr - cur_hr
            if drop > args.max_hit_rate_drop:
                failures.append(
                    (cell, policy, "hit_rate", base_hr, cur_hr,
                     -drop, -args.max_hit_rate_drop)
                )
                marker = "  << HIT RATE"

        name = f"{cell}/{policy}"
        print(
            f"{name:<{width}}  {base_eps:>12.0f}  {cur_eps:>12.0f}"
            f"  {delta:>+7.1%}  {slab_col:>12}{marker}"
        )

    if failures:
        # One self-contained line per failure: the offending (cell, policy,
        # metric) triple plus both values and the threshold it tripped, so
        # a red CI log pinpoints the regression without opening the JSONs.
        print(f"\nFAIL: {len(failures)} regression(s):")
        for cell, policy, metric, base_v, cur_v, delta, limit in failures:
            print(
                f"  cell={cell} policy={policy} metric={metric} "
                f"baseline={base_v:g} current={cur_v:g} delta={delta:+.1%} "
                f"(limit {limit:+.1%})"
            )
        return 1
    print(
        f"\nOK: no cell regressed more than {args.max_regression:.0%} in "
        f"events/sec or grew txn_live_peak more than "
        f"{args.max_slab_growth:.0%}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
