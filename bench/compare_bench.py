#!/usr/bin/env python3
"""Perf-regression gate over bench_engine_throughput JSON output.

Compares the events/sec of every (cell, policy) in a fresh BENCH_engine.json
against the checked-in baseline (bench/baseline/BENCH_engine.json) and exits
non-zero if any cell regressed by more than --max-regression (default 25%).

The generous default threshold is deliberate: the baseline is recorded on
one machine and CI runs on another, so the gate is meant to catch algorithmic
regressions (an accidental O(n^2) admission scan, a lost fast path), not
single-digit scheduling noise. Regenerate the baseline after intentional perf
changes with:

    bench_engine_throughput scale=0.1 reps=2 out=bench/baseline/BENCH_engine.json

Usage: compare_bench.py BASELINE CURRENT [--max-regression 0.25]
"""

import argparse
import json
import sys


def load_cells(path):
    with open(path) as f:
        doc = json.load(f)
    return {(c["cell"], c["policy"]): c for c in doc["cells"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="maximum tolerated fractional events/sec drop per cell",
    )
    args = parser.parse_args()

    baseline = load_cells(args.baseline)
    current = load_cells(args.current)

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"FAIL: current run is missing cells: {missing}")
        return 1

    failures = []
    width = max(len(f"{cell}/{policy}") for cell, policy in baseline)
    print(f"{'cell':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
    for (cell, policy), base in sorted(baseline.items()):
        cur = current[(cell, policy)]
        base_eps = base["events_per_sec"]
        cur_eps = cur["events_per_sec"]
        delta = (cur_eps - base_eps) / base_eps if base_eps > 0 else 0.0
        marker = ""
        if delta < -args.max_regression:
            failures.append((cell, policy, delta))
            marker = "  << REGRESSION"
        name = f"{cell}/{policy}"
        print(
            f"{name:<{width}}  {base_eps:>12.0f}  {cur_eps:>12.0f}"
            f"  {delta:>+7.1%}{marker}"
        )

    if failures:
        print(
            f"\nFAIL: {len(failures)} cell(s) regressed more than "
            f"{args.max_regression:.0%} in events/sec:"
        )
        for cell, policy, delta in failures:
            print(f"  {cell}/{policy}: {delta:+.1%}")
        return 1
    print(f"\nOK: no cell regressed more than {args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
