// Ablation A4: victim selection and repair-policy choices inside UNIT's
// Update Frequency Modulation, plus the ODU dedupe switch.
//
//  * dt_scale — how strongly one query access shields an item (Eq. 6 scale)
//  * selective vs global upgrades (Eq. 10 interpretation, DESIGN.md §4)
//  * ODU with/without in-flight refresh dedupe
//
// Usage: bench_ablation_victim [scale=1.0] [seed=42]

#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/core/policies/odu.h"
#include "unit/sched/engine.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed"}); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);

  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, scale, seed);
  if (!w.ok()) {
    std::cerr << w.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== Ablation A4: victim selection / repair choices ===\n"
            << "trace " << w->update_trace_name << "\n";

  std::cout << "\n--- dt_scale (access shielding strength, Eq. 6) ---\n";
  TextTable t1;
  t1.SetHeader({"dt_scale", "USM", "success", "dsf", "updates shed"});
  for (double dt_scale : {1.0, 10.0, 50.0, 100.0, 400.0, 1000.0}) {
    PolicyOptions options;
    options.unit.modulation.dt_scale = dt_scale;
    auto r = RunExperiment(*w, "unit", UsmWeights{}, EngineParams{}, options);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    const auto& c = r->metrics.counts;
    const double shed =
        static_cast<double>(r->metrics.updates_dropped) /
        static_cast<double>(std::max<int64_t>(w->TotalSourceUpdates(), 1));
    t1.AddRow({Fmt(dt_scale, 0), Fmt(r->usm, 3),
               FmtPercent(c.SuccessRatio()), FmtPercent(c.DsfRatio()),
               FmtPercent(shed)});
  }
  t1.Print(std::cout);

  std::cout << "\n--- upgrade policy (Eq. 10 reading) ---\n";
  TextTable t2;
  t2.SetHeader({"upgrade", "USM", "success", "dsf", "updates shed"});
  struct UpgradeChoice {
    const char* name;
    bool selective;
    bool linear;
  };
  for (const UpgradeChoice& choice :
       {UpgradeChoice{"selective", true, false},
        UpgradeChoice{"global-halving", false, false},
        UpgradeChoice{"global-linear", false, true}}) {
    PolicyOptions options;
    options.unit.modulation.selective_upgrade = choice.selective;
    options.unit.modulation.linear_upgrade = choice.linear;
    auto r = RunExperiment(*w, "unit", UsmWeights{}, EngineParams{}, options);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    const auto& c = r->metrics.counts;
    const double shed =
        static_cast<double>(r->metrics.updates_dropped) /
        static_cast<double>(std::max<int64_t>(w->TotalSourceUpdates(), 1));
    t2.AddRow({choice.name, Fmt(r->usm, 3), FmtPercent(c.SuccessRatio()),
               FmtPercent(c.DsfRatio()), FmtPercent(shed)});
  }
  t2.Print(std::cout);

  std::cout << "\n--- ODU in-flight refresh dedupe ---\n";
  TextTable t3;
  t3.SetHeader({"dedupe", "USM", "success", "dmf", "refreshes"});
  for (bool dedupe : {true, false}) {
    OduPolicy policy(dedupe);
    Engine engine(*w, &policy, {});
    RunMetrics m = engine.Run();
    t3.AddRow({dedupe ? "on" : "off",
               Fmt(UsmAverage(m.counts, UsmWeights{}), 3),
               FmtPercent(m.counts.SuccessRatio()),
               FmtPercent(m.counts.DmfRatio()),
               std::to_string(m.on_demand_updates)});
  }
  t3.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
