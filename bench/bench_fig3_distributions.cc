// Reproduces Figure 3 of the paper: distribution of query accesses and
// update volume over the data items, before and after UNIT's Update
// Frequency Modulation.
//
//   3(a) query accesses per data item (the skewed cello-like histogram)
//   3(b) med-unif: source updates (grey) vs UNIT-applied updates (black)
//   3(c) med-neg:  same; the paper reports >95% of updates dropped, with
//        drops concentrated on cold-accessed / hot-updated items
//
// Output: per-item-bucket series (CSV-like) plus summary statistics. Buckets
// aggregate runs of item ids so the series stays printable; pass buckets=0
// for the raw 1024-point series.
//
// Usage: bench_fig3_distributions [scale=1.0] [seed=42] [buckets=32]

#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

std::vector<double> BucketSums(const std::vector<int64_t>& per_item,
                               int buckets) {
  if (buckets <= 0) {
    return std::vector<double>(per_item.begin(), per_item.end());
  }
  std::vector<double> out(buckets, 0.0);
  const size_t n = per_item.size();
  for (size_t i = 0; i < n; ++i) {
    out[i * buckets / n] += static_cast<double>(per_item[i]);
  }
  return out;
}

void PrintSeries(const std::string& label, const std::vector<double>& series) {
  std::cout << label;
  for (double v : series) std::cout << "," << static_cast<int64_t>(v);
  std::cout << "\n";
}

void CaseStudy(const Workload& workload, const std::string& title,
               int buckets) {
  std::cout << "\n--- " << title << " (trace " << workload.update_trace_name
            << ") ---\n";
  auto result = RunExperiment(workload, "unit", UsmWeights{});
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return;
  }
  const RunMetrics& m = result->metrics;
  const auto source = workload.SourceUpdateCounts();
  PrintSeries("source_updates", BucketSums(source, buckets));
  PrintSeries("unit_applied", BucketSums(m.per_item_applied_updates, buckets));

  const int64_t total_source = workload.TotalSourceUpdates();
  const int64_t applied =
      std::accumulate(m.per_item_applied_updates.begin(),
                      m.per_item_applied_updates.end(), int64_t{0});
  std::cout << "dropped: " << FmtPercent(
                   1.0 - static_cast<double>(applied) /
                             static_cast<double>(std::max<int64_t>(
                                 total_source, 1)))
            << " of " << total_source << " source updates\n";

  // Keep-rate split by access class: the paper's observation (2) — updates
  // on cold-accessed, hot-updated data are dropped most.
  const auto accesses = workload.QueryAccessCounts();
  double kept_hot = 0, src_hot = 0, kept_cold = 0, src_cold = 0;
  for (int i = 0; i < workload.num_items; ++i) {
    if (accesses[i] > 0) {
      kept_hot += static_cast<double>(m.per_item_applied_updates[i]);
      src_hot += static_cast<double>(source[i]);
    } else {
      kept_cold += static_cast<double>(m.per_item_applied_updates[i]);
      src_cold += static_cast<double>(source[i]);
    }
  }
  std::cout << "keep-rate on queried items:   "
            << FmtPercent(src_hot > 0 ? kept_hot / src_hot : 1.0) << "\n"
            << "keep-rate on unqueried items: "
            << FmtPercent(src_cold > 0 ? kept_cold / src_cold : 1.0) << "\n";
}

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed", "buckets"}); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);
  const int buckets = static_cast<int>(config->GetInt("buckets", 32));

  std::cout << "=== Figure 3: accesses and updates over data items ===\n";

  auto med_unif = MakeStandardWorkload(UpdateVolume::kMedium,
                                       UpdateDistribution::kUniform, scale,
                                       seed);
  if (!med_unif.ok()) {
    std::cerr << med_unif.status().ToString() << "\n";
    return 1;
  }

  // 3(a): the query access histogram (identical for every update trace).
  std::cout << "\n--- Fig 3(a): query accesses per item ---\n";
  PrintSeries("query_accesses",
              BucketSums(med_unif->QueryAccessCounts(), buckets));

  // 3(b): med-unif.
  CaseStudy(*med_unif, "Fig 3(b): med-unif, original vs UNIT degraded",
            buckets);

  // 3(c): med-neg.
  auto med_neg = MakeStandardWorkload(UpdateVolume::kMedium,
                                      UpdateDistribution::kNegative, scale,
                                      seed);
  if (!med_neg.ok()) {
    std::cerr << med_neg.status().ToString() << "\n";
    return 1;
  }
  CaseStudy(*med_neg, "Fig 3(c): med-neg, original vs UNIT degraded",
            buckets);
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
