// Load-variation / adaptivity bench (the paper's Fig. 7 territory): how do
// UNIT and the fixed baselines respond when the operating point moves under
// them mid-run? Each scenario compiles a deterministic fault schedule (step
// query load, update outage) against the standard med-unif workload and
// reports the disturbance summary per policy — pre-fault baseline USM, dip
// depth inside the fault window, and time-to-recover after it. A policy with
// a working feedback loop (UNIT) should dip less and settle faster than the
// ablated/static baselines.
//
// The "none" scenario is the fault layer's regression guard: an empty
// schedule must be a strict behavioral no-op, so the bench re-runs the cell
// without the fault layer attached and exits nonzero if any headline metric
// differs bit-for-bit.
//
// Usage: bench_fig7_adaptivity [scale=0.25] [seed=42] [epsilon=0.25]
//                              [policies=unit,unit-bare,imu,qmf]
//                              [scenario=path/to/spec] [trace_dir=DIR]
//                              [out=BENCH_fig7.json]
//   scenario= replaces the two canned scenarios with a spec file (the no-op
//   check still runs); trace_dir= also writes one JSONL trace per cell.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "unit/common/config.h"
#include "unit/faults/schedule.h"
#include "unit/faults/scenario.h"
#include "unit/faults/settling.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

struct CellResult {
  std::string scenario;
  std::string policy;
  double usm = 0.0;
  DisturbanceReport disturbance;
};

struct NamedScenario {
  std::string name;
  FaultScenarioSpec spec;
};

/// The two canned disturbances, windowed relative to the run length so any
/// `scale` keeps the pre-fault baseline and post-fault recovery tail.
StatusOr<std::vector<NamedScenario>> CannedScenarios(double duration_s) {
  const auto window = [&](double lo, double hi) {
    std::ostringstream os;
    os << "fault0.start_s = " << duration_s * lo << "\n"
       << "fault0.end_s = " << duration_s * hi << "\n";
    return os.str();
  };
  auto step = FaultScenarioSpec::Parse(
      "name = step\nfault0.kind = load-step\nfault0.rate_hz = 20\n" +
      window(0.4, 0.6));
  if (!step.ok()) return step.status();
  auto outage = FaultScenarioSpec::Parse(
      "name = outage\nfault0.kind = update-outage\nfault0.items = 0-63\n" +
      window(0.4, 0.7));
  if (!outage.ok()) return outage.status();
  return std::vector<NamedScenario>{{"step", std::move(*step)},
                                    {"outage", std::move(*outage)}};
}

/// Empty schedule must not perturb the engine at all: compare every headline
/// metric of a faulted-but-empty run against the plain run, bit for bit.
Status CheckNoFaultNoOp(const Workload& workload, const std::string& policy,
                        const UsmWeights& weights) {
  FaultScenarioSpec none;
  auto schedule = FaultSchedule::Compile(none, workload, /*workload_seed=*/0);
  if (!schedule.ok()) return schedule.status();
  auto faulted = RunFaultedExperiment(workload, policy, weights, *schedule);
  if (!faulted.ok()) return faulted.status();
  auto plain = RunExperiment(workload, policy, weights);
  if (!plain.ok()) return plain.status();

  const RunMetrics& a = faulted->metrics;
  const RunMetrics& b = plain->metrics;
  const bool same =
      faulted->usm == plain->usm && a.counts.submitted == b.counts.submitted &&
      a.counts.success == b.counts.success &&
      a.counts.rejected == b.counts.rejected &&
      a.counts.dmf == b.counts.dmf && a.counts.dsf == b.counts.dsf &&
      a.busy_s == b.busy_s &&
      a.events_processed == b.events_processed &&
      a.events_cancelled == b.events_cancelled &&
      a.preemptions == b.preemptions && a.lock_restarts == b.lock_restarts &&
      a.update_commits == b.update_commits &&
      a.updates_dropped == b.updates_dropped && a.fault_edges == 0 &&
      a.fault_injected_queries == 0 && a.fault_injected_updates == 0 &&
      a.fault_suppressed_updates == 0;
  if (!same) {
    return Status(StatusCode::kInternal,
                  "empty fault schedule perturbed policy '" + policy +
                      "' (usm " + Fmt(faulted->usm, 6) + " vs " +
                      Fmt(plain->usm, 6) + ")");
  }
  return Status::Ok();
}

void WriteJson(const std::vector<CellResult>& results, double scale,
               uint64_t seed, double epsilon, const std::string& path) {
  std::ofstream f(path);
  f << "{\n";
  f << "  \"bench\": \"bench_fig7_adaptivity\",\n";
  f << "  \"scale\": " << scale << ",\n";
  f << "  \"seed\": " << seed << ",\n";
  f << "  \"epsilon\": " << epsilon << ",\n";
  f << "  \"cells\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    const DisturbanceReport& d = r.disturbance;
    f << "    {\"scenario\": \"" << r.scenario << "\", \"policy\": \""
      << r.policy << "\", \"usm\": " << r.usm
      << ", \"baseline_usm\": " << d.baseline_usm
      << ", \"min_usm\": " << d.min_usm << ", \"dip_depth\": " << d.dip_depth
      << ", \"recover_s\": " << d.recover_s
      << ", \"fault_start_s\": " << d.fault_start_s
      << ", \"fault_end_s\": " << d.fault_end_s << "}"
      << (i + 1 < results.size() ? "," : "") << "\n";
  }
  f << "  ]\n";
  f << "}\n";
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed", "epsilon", "policies",
                                     "scenario", "trace_dir", "out"});
      !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 0.25);
  const uint64_t seed = config->GetInt("seed", 42);
  const double epsilon = config->GetDouble("epsilon", 0.25);
  const std::string trace_dir = config->GetString("trace_dir", "");
  const std::string out = config->GetString("out", "BENCH_fig7.json");
  const std::vector<std::string> policies =
      SplitCsv(config->GetString("policies", "unit,unit-bare,imu,qmf"));
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};

  auto workload =
      MakeStandardWorkload(UpdateVolume::kMedium, UpdateDistribution::kUniform,
                           scale, seed);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  const double duration_s = SimToSeconds(workload->duration);

  std::vector<NamedScenario> scenarios;
  if (const std::string path = config->GetString("scenario", "");
      !path.empty()) {
    auto spec = FaultScenarioSpec::Load(path);
    if (!spec.ok()) {
      std::cerr << spec.status().ToString() << "\n";
      return 1;
    }
    scenarios.push_back({spec->name, std::move(*spec)});
  } else {
    auto canned = CannedScenarios(duration_s);
    if (!canned.ok()) {
      std::cerr << canned.status().ToString() << "\n";
      return 1;
    }
    scenarios = std::move(*canned);
  }

  std::cout << "=== Adaptivity under disturbance (Fig. 7 territory) ===\n";
  for (const std::string& policy : policies) {
    if (Status s = CheckNoFaultNoOp(*workload, policy, weights); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "no-fault no-op check: ok (" << policies.size()
            << " policies)\n";

  TextTable table;
  table.SetHeader({"scenario", "policy", "usm", "baseline", "dip",
                   "recover_s"});
  std::vector<CellResult> results;
  for (const NamedScenario& scenario : scenarios) {
    auto schedule = FaultSchedule::Compile(scenario.spec, *workload, seed);
    if (!schedule.ok()) {
      std::cerr << schedule.status().ToString() << "\n";
      return 1;
    }
    for (const std::string& policy : policies) {
      ObsOptions obs;
      obs.series = true;
      if (!trace_dir.empty()) {
        obs.trace_path =
            trace_dir + "/fig7_" + scenario.name + "_" + policy + ".jsonl";
      }
      auto r = RunFaultedExperiment(*workload, policy, weights, *schedule,
                                    obs, {}, {}, epsilon);
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        return 1;
      }
      CellResult cell;
      cell.scenario = scenario.name;
      cell.policy = policy;
      cell.usm = r->usm;
      cell.disturbance = r->disturbance;
      results.push_back(cell);
      const DisturbanceReport& d = cell.disturbance;
      table.AddRow({cell.scenario, cell.policy, Fmt(cell.usm, 4),
                    Fmt(d.baseline_usm, 4), Fmt(d.dip_depth, 4),
                    d.recover_s < 0 ? "never" : Fmt(d.recover_s, 1)});
    }
  }
  table.Print(std::cout);
  WriteJson(results, scale, seed, epsilon, out);
  std::cout << "wrote " << out << "\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
