// Ablation A2: sensitivity of UNIT to the forgetting factor C_forget
// (Eq. 8; paper default 0.9 "following current practice") and to the decay
// mode (time-based vs the literal per-event reading — see DESIGN.md §4).
//
// Usage: bench_ablation_forget [scale=1.0] [seed=42]

#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed"}); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);

  auto w = MakeStandardWorkload(UpdateVolume::kMedium,
                                UpdateDistribution::kUniform, scale, seed);
  if (!w.ok()) {
    std::cerr << w.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== Ablation A2: forgetting factor C_forget (Eq. 8) ===\n"
            << "trace " << w->update_trace_name << "\n\n";
  TextTable table;
  table.SetHeader({"decay", "C_forget", "USM", "success", "dsf",
                   "updates shed"});
  for (bool time_decay : {true, false}) {
    for (double c_forget : {0.5, 0.8, 0.9, 0.95, 0.99}) {
      PolicyOptions options;
      options.unit.modulation.time_decay = time_decay;
      options.unit.modulation.c_forget = c_forget;
      auto r = RunExperiment(*w, "unit", UsmWeights{}, EngineParams{},
                             options);
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        return 1;
      }
      const auto& c = r->metrics.counts;
      const double shed =
          static_cast<double>(r->metrics.updates_dropped) /
          static_cast<double>(std::max<int64_t>(w->TotalSourceUpdates(), 1));
      table.AddRow({time_decay ? "time" : "per-event", Fmt(c_forget, 2),
                    Fmt(r->usm, 3), FmtPercent(c.SuccessRatio()),
                    FmtPercent(c.DsfRatio()), FmtPercent(shed)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
