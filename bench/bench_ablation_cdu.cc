// Ablation A1: sensitivity of UNIT to the degrade step C_du (Eq. 9).
// The paper's tech report claims the exact value of C_du has no significant
// effect on the average USM; this bench sweeps C_du on med-unif and med-neg
// and reports USM plus how much update load was shed.
//
// Usage: bench_ablation_cdu [scale=1.0] [seed=42]

#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed"}); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);
  const std::vector<double> steps = {0.05, 0.1, 0.25, 0.5, 1.0};

  std::cout << "=== Ablation A1: degrade step C_du (Eq. 9) ===\n";
  for (UpdateDistribution dist :
       {UpdateDistribution::kUniform, UpdateDistribution::kNegative}) {
    auto w = MakeStandardWorkload(UpdateVolume::kMedium, dist, scale, seed);
    if (!w.ok()) {
      std::cerr << w.status().ToString() << "\n";
      return 1;
    }
    std::cout << "\n--- trace " << w->update_trace_name << " ---\n";
    TextTable table;
    table.SetHeader({"C_du", "USM", "success", "rejected", "dmf", "dsf",
                     "updates shed", "cpu util"});
    for (double c_du : steps) {
      PolicyOptions options;
      options.unit.modulation.c_du = c_du;
      auto r = RunExperiment(*w, "unit", UsmWeights{}, EngineParams{},
                             options);
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        return 1;
      }
      const auto& c = r->metrics.counts;
      const double shed =
          static_cast<double>(r->metrics.updates_dropped) /
          static_cast<double>(std::max<int64_t>(w->TotalSourceUpdates(), 1));
      table.AddRow({Fmt(c_du, 2), Fmt(r->usm, 3),
                    FmtPercent(c.SuccessRatio()),
                    FmtPercent(c.RejectionRatio()), FmtPercent(c.DmfRatio()),
                    FmtPercent(c.DsfRatio()), FmtPercent(shed),
                    FmtPercent(r->metrics.Utilization())});
    }
    table.Print(std::cout);
  }
  std::cout << "\npaper claim to check: USM varies little across C_du "
               "(the controller cadence,\nnot the per-pick step, sets the "
               "equilibrium).\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
