// Perf-tracking bench of the memory-flat hot path: sweeps run horizon
// (1x/3x/10x duration) x arrival rate over STREAMED workloads — queries are
// generated on demand by workload/query_source.h, never materialized — and
// emits BENCH_scale.json with wall-clock, events/sec, queries submitted, and
// the transaction-slab footprint per cell. The property under test: peak
// live slots (= slots_created = the arena's whole memory footprint) stays
// flat as the horizon grows 10x, because the slab recycles and the stream
// holds only one staged query. A materialized control run of the smallest
// cell confirms the streamed path is not paying a throughput tax.
//
// Usage: bench_scale_horizon [base_s=120] [rate=20] [seed=42] [reps=2]
//                            [policy=unit] [out=BENCH_scale.json]
//   base_s  duration of the 1x cell, seconds of simulated time
//   rate    normal-state arrival rate of the low-rate row (the high-rate
//           row runs at 4x this)
//   reps    engine runs per cell; wall-clock is the fastest rep

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"
#include "unit/workload/query_source.h"
#include "unit/workload/query_trace.h"
#include "unit/workload/update_trace.h"

namespace unitdb {
namespace {

struct CellResult {
  std::string cell;
  double duration_s = 0.0;
  double rate_hz = 0.0;
  bool streamed = true;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  int64_t events_processed = 0;
  int64_t submitted = 0;
  int64_t txn_live_peak = 0;
  int64_t txn_slots_created = 0;
  int64_t txn_released = 0;
  int64_t readset_inline = 0;
  int64_t readset_spill = 0;
};

StatusOr<Workload> MakeCell(double duration_s, double rate_hz, uint64_t seed,
                            bool streamed, bool bursty) {
  QueryTraceParams qp;
  qp.seed = seed;
  qp.duration = SecondsToSim(duration_s);
  qp.base_rate_hz = rate_hz;
  if (!bursty) {
    // Stationary Poisson arrivals with a bounded deadline tail: live
    // concurrency is set by rate x lifetime, not by flash-crowd or
    // long-deadline extremes, so the slab's peak saturates within the 1x
    // horizon and stays flat through 10x.
    qp.burst_rate_multiplier = 1.0;
    qp.deadline_hi_factor = 3.0;
  }
  auto workload =
      streamed ? MakeStreamingWorkload(qp) : GenerateQueryTrace(qp);
  if (!workload.ok()) return workload.status();
  UpdateTraceParams up;
  // Low update volume keeps the flat cells stable (total demand < 1): in a
  // saturated system live work legitimately accumulates, which would
  // confound the memory-flatness reading.
  up.volume = bursty ? UpdateVolume::kMedium : UpdateVolume::kLow;
  up.seed = seed + 1;
  Status s = GenerateUpdateTrace(up, *workload);
  if (!s.ok()) return s;
  return workload;
}

StatusOr<CellResult> RunCell(const Workload& w, const std::string& cell,
                             const std::string& policy, int reps,
                             bool streamed) {
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};
  CellResult out;
  out.cell = cell;
  out.duration_s = SimToSeconds(w.duration);
  out.streamed = streamed;
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = RunExperiment(w, policy, weights);
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) return r.status();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    out.events_processed = r->metrics.events_processed;
    out.submitted = r->metrics.counts.submitted;
    out.txn_live_peak = r->metrics.txn_live_peak;
    out.txn_slots_created = r->metrics.txn_slots_created;
    out.txn_released = r->metrics.txn_released;
    out.readset_inline = r->metrics.readset_inline;
    out.readset_spill = r->metrics.readset_spill;
  }
  out.wall_s = best;
  out.events_per_sec =
      best > 0.0 ? static_cast<double>(out.events_processed) / best : 0.0;
  return out;
}

void WriteJson(const std::vector<CellResult>& results, double base_s,
               double rate, uint64_t seed, int reps,
               const std::string& policy, const std::string& path) {
  std::ofstream f(path);
  f << "{\n";
  f << "  \"bench\": \"bench_scale_horizon\",\n";
  f << "  \"base_s\": " << base_s << ",\n";
  f << "  \"rate\": " << rate << ",\n";
  f << "  \"seed\": " << seed << ",\n";
  f << "  \"reps\": " << reps << ",\n";
  f << "  \"policy\": \"" << policy << "\",\n";
  f << "  \"cells\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    f << "    {\"cell\": \"" << r.cell << "\", \"duration_s\": "
      << r.duration_s << ", \"rate_hz\": " << r.rate_hz
      << ", \"streamed\": " << (r.streamed ? "true" : "false")
      << ", \"wall_s\": " << r.wall_s
      << ", \"events_per_sec\": " << r.events_per_sec
      << ", \"events_processed\": " << r.events_processed
      << ", \"submitted\": " << r.submitted
      << ", \"txn_live_peak\": " << r.txn_live_peak
      << ", \"txn_slots_created\": " << r.txn_slots_created
      << ", \"txn_released\": " << r.txn_released
      << ", \"readset_inline\": " << r.readset_inline
      << ", \"readset_spill\": " << r.readset_spill << "}"
      << (i + 1 < results.size() ? "," : "") << "\n";
  }
  f << "  ]\n";
  f << "}\n";
}

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys(
          {"base_s", "rate", "seed", "reps", "policy", "out"});
      !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double base_s = config->GetDouble("base_s", 120.0);
  const double rate = config->GetDouble("rate", 20.0);
  const uint64_t seed = config->GetInt("seed", 42);
  const int reps = static_cast<int>(config->GetInt("reps", 2));
  const std::string policy = config->GetString("policy", "unit");
  const std::string out = config->GetString("out", "BENCH_scale.json");

  // Two Poisson regimes, both with a saturating live population: clearly
  // stable (demand well under capacity, live set = in-flight arrivals) and
  // deeply overloaded (admission control pins the admitted live set to what
  // fits in the deadline windows). Near-critical load (util ~ 1) is
  // deliberately skipped: there queue extremes legitimately grow with
  // horizon and would confound the memory-flatness reading.
  const double horizons[] = {1.0, 3.0, 10.0};
  const double rates[] = {rate, 16.0 * rate};

  std::cout << "=== Scale horizon (streamed workloads, slab footprint) ===\n";
  TextTable table;
  table.SetHeader({"cell", "dur_s", "rate", "wall_s", "events/s", "submitted",
                   "live_peak", "slots", "spill"});
  std::vector<CellResult> results;
  auto run_one = [&](const std::string& cell, double dur_s, double rr,
                     bool streamed, bool bursty) -> bool {
    auto w = MakeCell(dur_s, rr, seed, streamed, bursty);
    if (!w.ok()) {
      std::cerr << w.status().ToString() << "\n";
      return false;
    }
    auto r = RunCell(*w, cell, policy, reps, streamed);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return false;
    }
    r->rate_hz = rr;
    results.push_back(*r);
    table.AddRow({r->cell, Fmt(dur_s, 0), Fmt(rr, 0), Fmt(r->wall_s, 4),
                  Fmt(r->events_per_sec, 0), std::to_string(r->submitted),
                  std::to_string(r->txn_live_peak),
                  std::to_string(r->txn_slots_created),
                  std::to_string(r->readset_spill)});
    return true;
  };
  // The flatness sweep: stationary Poisson arrivals at two rates x three
  // horizons. Live concurrency saturates within the 1x horizon, so the
  // slab footprint must not drift as total work grows 10x.
  for (const double rr : rates) {
    for (const double h : horizons) {
      std::string cell = "poisson-h";
      cell += Fmt(h, 0);
      cell += "x-r";
      cell += Fmt(rr, 0);
      if (!run_one(cell, base_s * h, rr, /*streamed=*/true,
                   /*bursty=*/false)) {
        return 1;
      }
    }
  }
  // Flash-crowd row (MMPP, the trace generator's default): here the peak IS
  // expected to grow with horizon — longer runs sample longer bursts — and
  // the slab footprint correctly tracks that real concurrency, not total
  // queries. Reported for context, excluded from the flatness check.
  for (const double h : horizons) {
    std::string cell = "mmpp-h";
    cell += Fmt(h, 0);
    cell += "x-r";
    cell += Fmt(rate, 0);
    if (!run_one(cell, base_s * h, rate, /*streamed=*/true,
                 /*bursty=*/true)) {
      return 1;
    }
  }
  // Materialized control: the smallest Poisson cell with the full trace in
  // memory. Streamed throughput should be within noise of this, and its
  // `submitted` column is the O(total) footprint the seed path pays.
  if (!run_one("poisson-h1x-materialized", base_s, rate, /*streamed=*/false,
               /*bursty=*/false)) {
    return 1;
  }
  table.Print(std::cout);

  // The flatness check the bench exists for: per Poisson rate row, peak
  // live slots across the 1x..10x horizons must not drift with total work.
  int64_t worst_spread = 0;
  double worst_growth = 0.0;
  for (size_t row = 0; row < 2; ++row) {
    int64_t lo = results[row * 3].txn_live_peak;
    int64_t hi = lo;
    for (size_t i = 0; i < 3; ++i) {
      lo = std::min(lo, results[row * 3 + i].txn_live_peak);
      hi = std::max(hi, results[row * 3 + i].txn_live_peak);
    }
    worst_spread = std::max(worst_spread, hi - lo);
    if (lo > 0) {
      worst_growth =
          std::max(worst_growth, static_cast<double>(hi) / lo);
    }
  }
  const double work_growth =
      results[0].submitted > 0
          ? static_cast<double>(results[2].submitted) / results[0].submitted
          : 0.0;
  std::cout << "peak live-slot spread across 10x Poisson horizon sweep: "
            << worst_spread << " (worst growth " << Fmt(worst_growth, 2)
            << "x vs " << Fmt(work_growth, 1) << "x submitted)\n";
  WriteJson(results, base_s, rate, seed, reps, policy, out);
  std::cout << "wrote " << out << "\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
