// Result-cache bench (Fig. 9): sweeps cache capacity x update volume and
// reports, per cell, the hit rate, the engine events processed (the work
// the cache saves — a hit skips the ready queue, the deadline event, and
// execution), the USM, and mean committed freshness. The headline claim is
// the high-hit-rate cell: at the largest capacity under low update volume
// the engine must process at least 20% fewer events than the uncached run
// of the same workload while the USM is no worse — hits are real successes
// at the same Eq. 1 freshness execution would have reported, never a
// quality trade.
//
// The "off" gate is the cache's regression guard, exactly like
// bench_fig8's sessions-off gate: capacity=0 with every other cache knob
// loaded must be a strict behavioral no-op, bit-for-bit across policies.
//
// All reported numbers are simulation outputs (not wall-clock), so the
// checked-in baseline under bench/baseline/ is machine-independent and
// compare_bench.py can gate on tight thresholds.
//
// Usage: bench_fig9_cache [scale=0.25] [seed=42] [policy=unit]
//                         [capacities=0,16,64,256] [volumes=low,med,high]
//                         [max_hit_udrop=-1] [out=BENCH_cache.json]
//
// Exit codes: 0 ok, 1 setup/knob error or a failed built-in gate (off-gate
// divergence, missing event saving, or USM regression at the high-hit cell).

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

struct CellResult {
  std::string cell;
  std::string volume;
  int capacity = 0;
  double usm = 0.0;
  double hit_rate = 0.0;
  int64_t events_processed = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t stale_skips = 0;
  int64_t invalidations = 0;
  double mean_freshness = 0.0;
};

/// capacity=0 must take zero divergent branches regardless of the other
/// cache knobs: compare every headline metric against the plain engine,
/// bit for bit, exactly like bench_fig8's sessions-off gate.
Status CheckCacheOffNoOp(const Workload& workload, const std::string& policy,
                         const UsmWeights& weights) {
  EngineParams off;
  off.cache.capacity = 0;
  off.cache.max_hit_udrop = 3;  // ignored while disabled
  auto with = RunExperiment(workload, policy, weights, off);
  if (!with.ok()) return with.status();
  auto plain = RunExperiment(workload, policy, weights);
  if (!plain.ok()) return plain.status();

  const RunMetrics& a = with->metrics;
  const RunMetrics& b = plain->metrics;
  const bool same =
      with->usm == plain->usm && a.counts.submitted == b.counts.submitted &&
      a.counts.success == b.counts.success &&
      a.counts.rejected == b.counts.rejected && a.counts.dmf == b.counts.dmf &&
      a.counts.dsf == b.counts.dsf && a.busy_s == b.busy_s &&
      a.events_processed == b.events_processed &&
      a.events_cancelled == b.events_cancelled &&
      a.preemptions == b.preemptions && a.lock_restarts == b.lock_restarts &&
      a.update_commits == b.update_commits &&
      a.query_response_s.sum() == b.query_response_s.sum() &&
      a.query_freshness.sum() == b.query_freshness.sum() &&
      a.cache_hits == 0 && a.cache_misses == 0 && a.cache_invalidations == 0 &&
      a.cache_stale_skips == 0;
  if (!same) {
    return Status(StatusCode::kInternal,
                  "disabled result cache perturbed policy '" + policy +
                      "' (usm " + Fmt(with->usm, 6) + " vs " +
                      Fmt(plain->usm, 6) + ")");
  }
  return Status::Ok();
}

void WriteJson(const std::vector<CellResult>& results,
               const std::string& policy, double scale, uint64_t seed,
               int64_t max_hit_udrop, const std::string& path) {
  std::ofstream f(path);
  f << "{\n";
  f << "  \"bench\": \"bench_fig9_cache\",\n";
  f << "  \"policy\": \"" << policy << "\",\n";
  f << "  \"scale\": " << scale << ",\n";
  f << "  \"seed\": " << seed << ",\n";
  f << "  \"max_hit_udrop\": " << max_hit_udrop << ",\n";
  f << "  \"cells\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    f << "    {\"cell\": \"" << r.cell << "\", \"volume\": \"" << r.volume
      << "\", \"capacity\": " << r.capacity << ", \"usm\": " << r.usm
      << ", \"hit_rate\": " << r.hit_rate
      << ", \"events_processed\": " << r.events_processed
      << ", \"hits\": " << r.hits << ", \"misses\": " << r.misses
      << ", \"stale_skips\": " << r.stale_skips
      << ", \"invalidations\": " << r.invalidations
      << ", \"mean_freshness\": " << r.mean_freshness << "}"
      << (i + 1 < results.size() ? "," : "") << "\n";
  }
  f << "  ]\n";
  f << "}\n";
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed", "policy", "capacities",
                                     "volumes", "max_hit_udrop", "out"});
      !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 0.25);
  const uint64_t seed = config->GetInt("seed", 42);
  const std::string policy = config->GetString("policy", "unit");
  const int64_t max_hit_udrop = config->GetInt("max_hit_udrop", -1);
  const std::string out = config->GetString("out", "BENCH_cache.json");
  std::vector<int> capacities;
  for (const std::string& tok :
       SplitCsv(config->GetString("capacities", "0,16,64,256"))) {
    capacities.push_back(std::stoi(tok));
  }
  std::vector<UpdateVolume> volumes;
  for (const std::string& tok :
       SplitCsv(config->GetString("volumes", "low,med,high"))) {
    if (tok == "low") {
      volumes.push_back(UpdateVolume::kLow);
    } else if (tok == "med") {
      volumes.push_back(UpdateVolume::kMedium);
    } else if (tok == "high") {
      volumes.push_back(UpdateVolume::kHigh);
    } else {
      std::cerr << "unknown volume '" << tok << "' (want low|med|high)\n";
      return 1;
    }
  }
  const UsmWeights weights{1.0, 0.5, 1.0, 0.5};

  std::cout << "=== Freshness-aware result cache (Fig. 9) ===\n";
  {
    auto gate_workload = MakeStandardWorkload(
        UpdateVolume::kMedium, UpdateDistribution::kUniform, scale, seed);
    if (!gate_workload.ok()) {
      std::cerr << gate_workload.status().ToString() << "\n";
      return 1;
    }
    for (const char* p : {"unit", "imu", "odu", "qmf"}) {
      if (Status s = CheckCacheOffNoOp(*gate_workload, p, weights); !s.ok()) {
        std::cerr << s.ToString() << "\n";
        return 1;
      }
    }
    std::cout << "cache-off no-op check: ok (4 policies)\n";
  }

  TextTable table;
  table.SetHeader({"cell", "volume", "capacity", "usm", "hit_rate",
                   "events", "freshness"});
  std::vector<CellResult> results;
  // Per volume: the capacity=0 baseline's event count, for the saving gate.
  int64_t low_volume_baseline_events = -1;
  const CellResult* high_hit_cell = nullptr;

  for (UpdateVolume volume : volumes) {
    auto workload = MakeStandardWorkload(volume, UpdateDistribution::kUniform,
                                         scale, seed);
    if (!workload.ok()) {
      std::cerr << workload.status().ToString() << "\n";
      return 1;
    }
    for (int capacity : capacities) {
      EngineParams engine;
      engine.cache.capacity = capacity;
      engine.cache.max_hit_udrop = capacity > 0 ? max_hit_udrop : -1;
      auto r = RunExperiment(*workload, policy, weights, engine);
      if (!r.ok()) {
        std::cerr << r.status().ToString() << "\n";
        return 1;
      }
      const RunMetrics& m = r->metrics;

      CellResult cell;
      cell.volume = UpdateVolumeName(volume);
      cell.capacity = capacity;
      cell.cell = cell.volume + "_c" + std::to_string(capacity);
      cell.usm = r->usm;
      cell.events_processed = m.events_processed;
      cell.hits = m.cache_hits;
      cell.misses = m.cache_misses;
      cell.stale_skips = m.cache_stale_skips;
      cell.invalidations = m.cache_invalidations;
      const int64_t looked_up = m.cache_hits + m.cache_misses +
                                m.cache_stale_skips;
      cell.hit_rate = looked_up > 0 ? static_cast<double>(m.cache_hits) /
                                          static_cast<double>(looked_up)
                                    : 0.0;
      cell.mean_freshness = m.query_freshness.mean();
      results.push_back(cell);
      table.AddRow({cell.cell, cell.volume, std::to_string(capacity),
                    Fmt(cell.usm, 4), Fmt(cell.hit_rate, 4),
                    std::to_string(cell.events_processed),
                    Fmt(cell.mean_freshness, 4)});

      if (volume == UpdateVolume::kLow && capacity == 0) {
        low_volume_baseline_events = cell.events_processed;
      }
    }
  }
  table.Print(std::cout);
  // The high-hit cell: largest capacity under the lowest update volume.
  for (const CellResult& c : results) {
    if (c.volume == std::string(UpdateVolumeName(UpdateVolume::kLow)) &&
        (high_hit_cell == nullptr || c.capacity > high_hit_cell->capacity)) {
      high_hit_cell = &c;
    }
  }

  WriteJson(results, policy, scale, seed, max_hit_udrop, out);
  std::cout << "wrote " << out << "\n";

  if (high_hit_cell != nullptr && low_volume_baseline_events > 0 &&
      high_hit_cell->capacity > 0) {
    const double saving =
        1.0 - static_cast<double>(high_hit_cell->events_processed) /
                  static_cast<double>(low_volume_baseline_events);
    double baseline_usm = 0.0;
    for (const CellResult& c : results) {
      if (c.volume == high_hit_cell->volume && c.capacity == 0) {
        baseline_usm = c.usm;
      }
    }
    std::cout << "high-hit cell " << high_hit_cell->cell << ": hit_rate "
              << Fmt(high_hit_cell->hit_rate, 4) << ", event saving "
              << Fmt(100.0 * saving, 1) << "% vs uncached, usm "
              << Fmt(high_hit_cell->usm, 4) << " (uncached "
              << Fmt(baseline_usm, 4) << ")\n";
    if (saving < 0.20) {
      std::cerr << "GATE: high-hit cell saved only " << Fmt(100.0 * saving, 1)
                << "% of events (want >= 20%)\n";
      return 1;
    }
    if (high_hit_cell->usm < baseline_usm) {
      std::cerr << "GATE: high-hit cell USM " << Fmt(high_hit_cell->usm, 4)
                << " regressed below uncached " << Fmt(baseline_usm, 4)
                << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
