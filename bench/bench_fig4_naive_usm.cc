// Reproduces Figure 4 of the paper: the "naive" USM (all penalty weights
// zero, so USM == success ratio) for IMU, ODU, QMF and UNIT over the nine
// update traces — panels (a) uniform, (b) positive, (c) negative, each with
// low/med/high volume groups — including ASCII bar renderings.
//
// All cells dispatch through RunGrid, which fans the (trace x policy) grid
// across a thread pool; cell order (and hence every table) is deterministic
// for any jobs count.
//
// Usage: bench_fig4_naive_usm [scale=1.0] [seed=42] [seeds=1] [jobs=0]
//   seeds > 1 appends a multi-seed table (mean +/- stddev over independent
//   workload replications) for error bars.
//   jobs=0: one worker per hardware thread.

#include <chrono>
#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/common/thread_pool.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);
  const int jobs = ResolveJobs(static_cast<int>(config->GetInt("jobs", 0)));
  const std::vector<std::string> policies = {"imu", "odu", "qmf", "unit"};

  std::cout << "=== Figure 4: naive USM (= success ratio) ===\n";

  const char* panel[] = {"(a) uniform", "(b) positive correlation",
                         "(c) negative correlation"};

  // The full 9-trace x 4-policy grid in one parallel sweep. Empty
  // `weightings` means the naive weighting (all penalties zero, USM ==
  // success ratio); cells come back distribution-major, volume, policy —
  // the panel order below.
  GridSpec spec;
  spec.policies = policies;
  spec.scale = scale;
  spec.base_seed = seed;
  const auto grid_t0 = std::chrono::steady_clock::now();
  auto grid = RunGrid(spec, jobs);
  if (!grid.ok()) {
    std::cerr << grid.status().ToString() << "\n";
    return 1;
  }
  double grid_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - grid_t0)
          .count();

  for (size_t d = 0; d < spec.distributions.size(); ++d) {
    std::cout << "\n--- Fig 4" << panel[d] << " ---\n";
    TextTable table;
    table.SetHeader({"trace", "imu", "odu", "qmf", "unit", "winner"});
    for (size_t v = 0; v < spec.volumes.size(); ++v) {
      const GridCellResult* cells =
          grid->data() + (d * spec.volumes.size() + v) * policies.size();
      std::vector<std::string> row = {cells[0].result.trace};
      double best = -1e9;
      std::string winner;
      for (size_t p = 0; p < policies.size(); ++p) {
        const double usm = cells[p].result.usm.mean();
        row.push_back(Fmt(usm, 3));
        if (usm > best) {
          best = usm;
          winner = cells[p].result.policy;
        }
      }
      row.push_back(winner);
      table.AddRow(std::move(row));

      // ASCII bars mirroring the paper's grouped bar chart.
      for (size_t p = 0; p < policies.size(); ++p) {
        const double usm = cells[p].result.usm.mean();
        std::cout << "  " << cells[p].result.trace << " "
                  << cells[p].result.policy << " " << Bar(usm, 1.0) << " "
                  << Fmt(usm, 3) << "\n";
      }
    }
    std::cout << "\n";
    table.Print(std::cout);
  }
  // Optional multi-seed replication for error bars: the same grid with
  // `seeds` replications per cell, again fanned across the pool.
  const int seeds = static_cast<int>(config->GetInt("seeds", 1));
  if (seeds > 1) {
    std::cout << "\n--- multi-seed (" << seeds
              << " replications, mean +/- stddev) ---\n";
    GridSpec rep_spec = spec;
    rep_spec.replications = seeds;
    const auto rep_t0 = std::chrono::steady_clock::now();
    auto rep_grid = RunGrid(rep_spec, jobs);
    if (!rep_grid.ok()) {
      std::cerr << rep_grid.status().ToString() << "\n";
      return 1;
    }
    grid_wall_s += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - rep_t0)
                       .count();
    TextTable reps;
    reps.SetHeader({"trace", "imu", "odu", "qmf", "unit"});
    for (size_t cell = 0; cell < rep_grid->size(); cell += policies.size()) {
      std::vector<std::string> row = {(*rep_grid)[cell].result.trace};
      for (size_t p = 0; p < policies.size(); ++p) {
        const ReplicatedResult& r = (*rep_grid)[cell + p].result;
        row.push_back(Fmt(r.usm.mean(), 3) + "+/-" + Fmt(r.usm.stddev(), 3));
      }
      reps.AddRow(std::move(row));
    }
    reps.Print(std::cout);
  }

  std::cout << "grid wall-clock: " << Fmt(grid_wall_s, 3) << " s (jobs="
            << jobs << ")\n";
  std::cout << "\npaper shape: UNIT leads or ties in every panel; IMU "
               "collapses at high volume;\nQMF trails ODU at uniform; IMU ~ "
               "ODU under positive correlation; ODU ~ UNIT\nunder negative "
               "correlation.\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
