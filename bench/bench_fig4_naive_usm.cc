// Reproduces Figure 4 of the paper: the "naive" USM (all penalty weights
// zero, so USM == success ratio) for IMU, ODU, QMF and UNIT over the nine
// update traces — panels (a) uniform, (b) positive, (c) negative, each with
// low/med/high volume groups — including ASCII bar renderings.
//
// Usage: bench_fig4_naive_usm [scale=1.0] [seed=42] [seeds=1]
//   seeds > 1 appends a multi-seed table (mean +/- stddev over independent
//   workload replications) for error bars.

#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);
  const std::vector<std::string> policies = {"imu", "odu", "qmf", "unit"};
  const UsmWeights naive;  // all penalties zero: USM == success ratio

  std::cout << "=== Figure 4: naive USM (= success ratio) ===\n";

  const UpdateDistribution dists[] = {UpdateDistribution::kUniform,
                                      UpdateDistribution::kPositive,
                                      UpdateDistribution::kNegative};
  const char* panel[] = {"(a) uniform", "(b) positive correlation",
                         "(c) negative correlation"};
  const UpdateVolume volumes[] = {UpdateVolume::kLow, UpdateVolume::kMedium,
                                  UpdateVolume::kHigh};

  for (int d = 0; d < 3; ++d) {
    std::cout << "\n--- Fig 4" << panel[d] << " ---\n";
    TextTable table;
    table.SetHeader({"trace", "imu", "odu", "qmf", "unit", "winner"});
    for (UpdateVolume volume : volumes) {
      auto w = MakeStandardWorkload(volume, dists[d], scale, seed);
      if (!w.ok()) {
        std::cerr << w.status().ToString() << "\n";
        return 1;
      }
      auto results = RunPolicies(*w, policies, naive);
      if (!results.ok()) {
        std::cerr << results.status().ToString() << "\n";
        return 1;
      }
      std::vector<std::string> row = {w->update_trace_name};
      double best = -1e9;
      std::string winner;
      for (const auto& r : *results) {
        row.push_back(Fmt(r.usm, 3));
        if (r.usm > best) {
          best = r.usm;
          winner = r.policy;
        }
      }
      row.push_back(winner);
      table.AddRow(std::move(row));

      // ASCII bars mirroring the paper's grouped bar chart.
      for (const auto& r : *results) {
        std::cout << "  " << w->update_trace_name << " " << r.policy << " "
                  << Bar(r.usm, 1.0) << " " << Fmt(r.usm, 3) << "\n";
      }
    }
    std::cout << "\n";
    table.Print(std::cout);
  }
  // Optional multi-seed replication for error bars.
  const int seeds = static_cast<int>(config->GetInt("seeds", 1));
  if (seeds > 1) {
    std::cout << "\n--- multi-seed (" << seeds
              << " replications, mean +/- stddev) ---\n";
    TextTable reps;
    reps.SetHeader({"trace", "imu", "odu", "qmf", "unit"});
    for (UpdateDistribution dist : dists) {
      for (UpdateVolume volume : volumes) {
        std::vector<std::string> row;
        for (const auto& policy : policies) {
          auto r = RunReplicated(volume, dist, policy, naive, seeds, scale,
                                 seed);
          if (!r.ok()) {
            std::cerr << r.status().ToString() << "\n";
            return 1;
          }
          if (row.empty()) row.push_back(r->trace);
          row.push_back(Fmt(r->usm.mean(), 3) + "+/-" +
                        Fmt(r->usm.stddev(), 3));
        }
        reps.AddRow(std::move(row));
      }
    }
    reps.Print(std::cout);
  }

  std::cout << "\npaper shape: UNIT leads or ties in every panel; IMU "
               "collapses at high volume;\nQMF trails ODU at uniform; IMU ~ "
               "ODU under positive correlation; ODU ~ UNIT\nunder negative "
               "correlation.\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
