// Reproduces Figure 4 of the paper: the "naive" USM (all penalty weights
// zero, so USM == success ratio) for IMU, ODU, QMF and UNIT over the nine
// update traces — panels (a) uniform, (b) positive, (c) negative, each with
// low/med/high volume groups — including ASCII bar renderings.
//
// All cells dispatch through RunGrid, which fans the (trace x policy) grid
// across a thread pool; cell order (and hence every table) is deterministic
// for any jobs count.
//
// Usage: bench_fig4_naive_usm [scale=1.0] [seed=42] [seeds=1] [jobs=0]
//                             [shard=1] [grid=1] [trace_dir=DIR]
//                             [trace_cell=NAME]
//   seeds > 1 appends a multi-seed table (mean +/- stddev over independent
//   workload replications) for error bars.
//   jobs=0: one worker per hardware thread.
//   shard=N runs every grid cell through the sharded multi-engine runner
//   (shard/sharded.h) with N shards; shard=1 keeps the monolithic engine.
//   Traced re-runs (trace_dir) stay monolithic either way.
//   trace_dir=DIR additionally re-runs cells single-shot with observability
//   attached, writing DIR/<trace>-<policy>.jsonl (event trace, the input
//   format of tools/trace_check) and DIR/<trace>-<policy>-series.csv (the
//   per-control-window time series). trace_cell=NAME (e.g. med-unif)
//   restricts the traced runs to one trace; grid=0 skips the headline grid
//   so CI can generate a trace cheaply.

#include <chrono>
#include <filesystem>
#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/common/thread_pool.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

// Single-shot traced re-runs of the (trace x policy) cells, one JSONL event
// trace plus one window-series CSV per cell. Sequential on purpose: each run
// owns its sink files and the runs are cheap at CI scale.
int RunTracedCells(const GridSpec& spec, const std::string& trace_dir,
                   const std::string& trace_cell, double scale,
                   uint64_t seed) {
  std::error_code ec;
  std::filesystem::create_directories(trace_dir, ec);
  if (ec) {
    std::cerr << "cannot create " << trace_dir << ": " << ec.message()
              << "\n";
    return 1;
  }
  std::cout << "\n--- traced runs (JSONL + window series) -> " << trace_dir
            << " ---\n";
  bool matched = false;
  for (UpdateDistribution dist : spec.distributions) {
    for (UpdateVolume volume : spec.volumes) {
      auto workload = MakeStandardWorkload(volume, dist, scale, seed);
      if (!workload.ok()) {
        std::cerr << workload.status().ToString() << "\n";
        return 1;
      }
      const std::string& trace = workload->update_trace_name;
      if (!trace_cell.empty() && trace != trace_cell) continue;
      matched = true;
      for (const std::string& policy : spec.policies) {
        ObsOptions obs;
        obs.trace_path = trace_dir + "/" + trace + "-" + policy + ".jsonl";
        obs.series_csv_path =
            trace_dir + "/" + trace + "-" + policy + "-series.csv";
        auto r = RunTracedExperiment(*workload, policy, UsmWeights{}, obs);
        if (!r.ok()) {
          std::cerr << r.status().ToString() << "\n";
          return 1;
        }
        int64_t events = 0;
        for (const auto& [name, value] : r->metrics.obs_counters) {
          if (name == "sink.jsonl.events") events = value;
        }
        std::cout << "  " << trace << " " << policy << " usm="
                  << Fmt(r->usm, 3) << " events=" << events << " windows="
                  << r->series.size() << "\n";
      }
    }
  }
  if (!matched) {
    std::cerr << "trace_cell '" << trace_cell
              << "' matches no trace (expected e.g. med-unif)\n";
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed", "seeds", "jobs",
                                     "shard", "shards", "grid", "trace_dir",
                                     "trace_cell"});
      !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);
  const int jobs = ResolveJobs(static_cast<int>(config->GetInt("jobs", 0)));
  const bool run_grid = config->GetBool("grid", true);
  const std::string trace_dir = config->GetString("trace_dir", "");
  const std::string trace_cell = config->GetString("trace_cell", "");
  const std::vector<std::string> policies = {"imu", "odu", "qmf", "unit"};

  std::cout << "=== Figure 4: naive USM (= success ratio) ===\n";

  const char* panel[] = {"(a) uniform", "(b) positive correlation",
                         "(c) negative correlation"};

  // The full 9-trace x 4-policy grid in one parallel sweep. Empty
  // `weightings` means the naive weighting (all penalties zero, USM ==
  // success ratio); cells come back distribution-major, volume, policy —
  // the panel order below.
  GridSpec spec;
  spec.policies = policies;
  spec.scale = scale;
  spec.base_seed = seed;
  // `shards=` is the canonical spelling (matching diff_fuzz and the README
  // knobs table); `shard=` stays accepted for older scripts.
  spec.shards =
      static_cast<int>(config->GetInt("shards", config->GetInt("shard", 1)));
  if (spec.shards > 1) {
    std::cout << "(sharded runner: shards=" << spec.shards
              << ", parent-level Eq. 5 accounting)\n";
  }

  if (run_grid) {
    const auto grid_t0 = std::chrono::steady_clock::now();
    auto grid = RunGrid(spec, jobs);
    if (!grid.ok()) {
      std::cerr << grid.status().ToString() << "\n";
      return 1;
    }
    double grid_wall_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - grid_t0)
                             .count();

    for (size_t d = 0; d < spec.distributions.size(); ++d) {
      std::cout << "\n--- Fig 4" << panel[d] << " ---\n";
      TextTable table;
      table.SetHeader({"trace", "imu", "odu", "qmf", "unit", "winner"});
      for (size_t v = 0; v < spec.volumes.size(); ++v) {
        const GridCellResult* cells =
            grid->data() + (d * spec.volumes.size() + v) * policies.size();
        std::vector<std::string> row = {cells[0].result.trace};
        double best = -1e9;
        std::string winner;
        for (size_t p = 0; p < policies.size(); ++p) {
          const double usm = cells[p].result.usm.mean();
          row.push_back(Fmt(usm, 3));
          if (usm > best) {
            best = usm;
            winner = cells[p].result.policy;
          }
        }
        row.push_back(winner);
        table.AddRow(std::move(row));

        // ASCII bars mirroring the paper's grouped bar chart.
        for (size_t p = 0; p < policies.size(); ++p) {
          const double usm = cells[p].result.usm.mean();
          std::cout << "  " << cells[p].result.trace << " "
                    << cells[p].result.policy << " " << Bar(usm, 1.0) << " "
                    << Fmt(usm, 3) << "\n";
        }
      }
      std::cout << "\n";
      table.Print(std::cout);
    }
    // Optional multi-seed replication for error bars: the same grid with
    // `seeds` replications per cell, again fanned across the pool.
    const int seeds = static_cast<int>(config->GetInt("seeds", 1));
    if (seeds > 1) {
      std::cout << "\n--- multi-seed (" << seeds
                << " replications, mean +/- stddev) ---\n";
      GridSpec rep_spec = spec;
      rep_spec.replications = seeds;
      const auto rep_t0 = std::chrono::steady_clock::now();
      auto rep_grid = RunGrid(rep_spec, jobs);
      if (!rep_grid.ok()) {
        std::cerr << rep_grid.status().ToString() << "\n";
        return 1;
      }
      grid_wall_s += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - rep_t0)
                         .count();
      TextTable reps;
      reps.SetHeader({"trace", "imu", "odu", "qmf", "unit"});
      for (size_t cell = 0; cell < rep_grid->size();
           cell += policies.size()) {
        std::vector<std::string> row = {(*rep_grid)[cell].result.trace};
        for (size_t p = 0; p < policies.size(); ++p) {
          const ReplicatedResult& r = (*rep_grid)[cell + p].result;
          row.push_back(Fmt(r.usm.mean(), 3) + "+/-" +
                        Fmt(r.usm.stddev(), 3));
        }
        reps.AddRow(std::move(row));
      }
      reps.Print(std::cout);
    }

    std::cout << "grid wall-clock: " << Fmt(grid_wall_s, 3) << " s (jobs="
              << jobs << ")\n";
    std::cout << "\npaper shape: UNIT leads or ties in every panel; IMU "
                 "collapses at high volume;\nQMF trails ODU at uniform; IMU ~ "
                 "ODU under positive correlation; ODU ~ UNIT\nunder negative "
                 "correlation.\n";
  }

  if (!trace_dir.empty()) {
    return RunTracedCells(spec, trace_dir, trace_cell, scale, seed);
  }
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
