// Extension E+: unit-hybrid — UNIT plus just-in-time buffered-value repair
// (the future-work combination DESIGN.md discusses) — over the full nine-
// trace matrix against plain UNIT and ODU. The hypothesis from
// EXPERIMENTS.md: the hybrid recovers ODU's high-volume advantage while
// keeping UNIT's wins everywhere else.
//
// Usage: bench_extension_hybrid [scale=1.0] [seed=42]

#include <iostream>
#include <vector>

#include "unit/common/config.h"
#include "unit/sim/experiment.h"
#include "unit/sim/report.h"

namespace unitdb {
namespace {

int Main(int argc, char** argv) {
  auto config = Config::ParseArgs(argc, argv);
  if (!config.ok()) {
    std::cerr << config.status().ToString() << "\n";
    return 1;
  }
  if (Status s = config->ExpectKeys({"scale", "seed"}); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  const double scale = config->GetDouble("scale", 1.0);
  const uint64_t seed = config->GetInt("seed", 42);

  std::cout << "=== Extension: unit-hybrid (UNIT + just-in-time repair) "
               "===\n\n";
  TextTable table;
  table.SetHeader({"trace", "unit", "odu", "unit-hybrid", "winner"});
  int hybrid_wins = 0, cells = 0;
  const UpdateVolume volumes[] = {UpdateVolume::kLow, UpdateVolume::kMedium,
                                  UpdateVolume::kHigh};
  const UpdateDistribution dists[] = {UpdateDistribution::kUniform,
                                      UpdateDistribution::kPositive,
                                      UpdateDistribution::kNegative};
  for (UpdateDistribution dist : dists) {
    for (UpdateVolume volume : volumes) {
      auto w = MakeStandardWorkload(volume, dist, scale, seed);
      if (!w.ok()) {
        std::cerr << w.status().ToString() << "\n";
        return 1;
      }
      auto results =
          RunPolicies(*w, {"unit", "odu", "unit-hybrid"}, UsmWeights{});
      if (!results.ok()) {
        std::cerr << results.status().ToString() << "\n";
        return 1;
      }
      std::vector<std::string> row = {w->update_trace_name};
      double best = -1e9;
      std::string winner;
      for (const auto& r : *results) {
        row.push_back(Fmt(r.usm, 3));
        if (r.usm > best) {
          best = r.usm;
          winner = r.policy;
        }
      }
      row.push_back(winner);
      ++cells;
      if (winner == "unit-hybrid") ++hybrid_wins;
      table.AddRow(std::move(row));
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  std::cout << "\nunit-hybrid wins " << hybrid_wins << " of " << cells
            << " cells outright.\n";
  return 0;
}

}  // namespace
}  // namespace unitdb

int main(int argc, char** argv) { return unitdb::Main(argc, argv); }
